(* The typed-AST pass.  One [scan_cmt] per compilation unit: load the
   .cmt, walk the typedtree with a Tast_iterator, apply the four rule
   families (DESIGN.md §12) under the path scopes of [Lint_config], and
   honour [@lint.allow]/[@@@lint.zero_alloc_hot]/[@@lint.bounds_checked]
   attributes as they come into scope. *)

open Typedtree

type scan = {
  findings : Finding.t list;
  suppressed : (Finding.t * string) list;
      (* finding silenced by a justified allow, with its justification *)
}

let empty_scan = { findings = []; suppressed = [] }

let merge a b =
  {
    findings = a.findings @ b.findings;
    suppressed = a.suppressed @ b.suppressed;
  }

(* ------------------------------------------------------------------ *)
(* Identifier tables                                                   *)
(* ------------------------------------------------------------------ *)

let norm_path p =
  let n = Path.name p in
  let prefix = "Stdlib." in
  if
    String.length n > String.length prefix
    && String.equal (String.sub n 0 (String.length prefix)) prefix
  then String.sub n (String.length prefix) (String.length n - String.length prefix)
  else n

let mem_name name set = List.exists (String.equal name) set

let self_init_names = [ "Random.self_init"; "Random.State.make_self_init" ]
let wall_clock_names = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]
let domain_spawn_names = [ "Domain.spawn" ]

(* any Atomic.* operation: matched by module prefix rather than an
   explicit list because the whole module is off-limits outside the
   barrier code — shard-confined plain state plus the window barrier is
   the project's synchronization discipline *)
let atomic_name name = String.length name > 7 && String.sub name 0 7 = "Atomic."

let hashtbl_order_names =
  [
    "Hashtbl.iter";
    "Hashtbl.fold";
    "Hashtbl.to_seq";
    "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values";
  ]

let unsafe_names =
  [
    "Array.unsafe_get";
    "Array.unsafe_set";
    "Bytes.unsafe_get";
    "Bytes.unsafe_set";
  ]

let alloc_array_names =
  [
    "Array.copy"; "Array.append"; "Array.sub"; "Array.init"; "Array.make";
    "Array.create_float"; "Array.make_matrix"; "Array.of_list";
    "Array.to_list"; "Array.of_seq"; "Array.to_seq"; "Array.to_seqi";
    "Array.map"; "Array.mapi"; "Array.map2"; "Array.concat"; "Array.split";
    "Array.combine";
  ]

let alloc_list_names =
  [
    "List.map"; "List.mapi"; "List.map2"; "List.rev"; "List.rev_map";
    "List.append"; "List.rev_append"; "List.concat"; "List.concat_map";
    "List.flatten"; "List.filter"; "List.filteri"; "List.filter_map";
    "List.partition"; "List.init"; "List.sort"; "List.stable_sort";
    "List.fast_sort"; "List.sort_uniq"; "List.merge"; "List.split";
    "List.combine"; "List.of_seq"; "List.cons"; "@";
  ]

let alloc_string_names =
  [
    "^"; "String.make"; "String.init"; "String.sub"; "String.concat";
    "String.cat"; "String.map"; "String.mapi"; "String.split_on_char";
    "String.to_bytes"; "String.of_bytes"; "String.uppercase_ascii";
    "String.lowercase_ascii"; "String.capitalize_ascii"; "Bytes.create";
    "Bytes.make"; "Bytes.init"; "Bytes.sub"; "Bytes.copy"; "Bytes.extend";
    "Bytes.cat"; "Bytes.concat"; "Bytes.of_string"; "Bytes.to_string";
    "Printf.sprintf"; "Format.sprintf"; "Format.asprintf";
  ]

let alloc_ref_names = [ "ref" ]
let polycmp_equal_names = [ "="; "<>" ]
let polycmp_order_names = [ "compare"; "min"; "max"; "<"; ">"; "<="; ">=" ]
let polycmp_hash_names = [ "Hashtbl.hash"; "Hashtbl.seeded_hash" ]

(* ------------------------------------------------------------------ *)
(* mt/*: shard-ownership tables (DESIGN.md §16)                        *)
(* ------------------------------------------------------------------ *)

(* Does the (Stdlib-stripped) path [name] end in the dotted name [short]?
   Matches through module aliases and dune's wrapped-library prefixes
   ("Barrier_team.run_sub", "Rdt_parallel.Barrier_team.run_sub" and
   "Rdt_parallel__Barrier_team.run_sub" all match
   "Barrier_team.run_sub") but never a partial component. *)
let name_suffix name short =
  String.equal name short
  || String.length name > String.length short
     && (let nl = String.length name and sl = String.length short in
         String.equal (String.sub name (nl - sl) sl) short
         && (match name.[nl - sl - 1] with '.' | '_' -> true | _ -> false))

(* undotted names (incr, ref, :=) are Stdlib values after [norm_path];
   suffix-matching those would swallow every [Foo.incr] in the tree *)
let name_matches name short =
  if String.contains short '.' then name_suffix name short
  else String.equal name short

let mem_match name set = List.exists (name_matches name) set

(* Functions whose closure argument runs on another domain.  [`All]: the
   closure's parameters are member/shard indices the scope owns (a
   barrier team invokes the job with the member index); [`None]: the
   parameters carry no ownership.  [@@@lint.domain_scope] declares
   further entry points by function name. *)
let scope_call_specs =
  [
    ("Barrier_team.run_sub", `All);
    ("Barrier_team.run", `All);
    ("Domain.spawn", `All);
    ("Domain_pool.map", `None);
    (* pinned/owned engine callbacks execute inside the owning shard's
       window; the closure parameters (a sender pid, a message) are not
       shard-derived *)
    ("Engine.schedule", `None);
    ("Engine.schedule_in", `None);
    ("Engine.set_receiver", `None);
  ]

(* functions whose result is the executing member/shard index *)
let domain_index_builtin = [ "Barrier_team.self_index" ]

(* Mutating operations: (name, position of the mutated value among the
   unlabelled arguments, position of the striping index when the
   operation is itself indexed).  Atomic.* is deliberately absent — an
   atomic access inside a scope is the sanctioned escape. *)
let mutator_specs =
  [
    (":=", 0, None);
    ("incr", 0, None);
    ("decr", 0, None);
    ("Array.set", 0, Some 1);
    ("Array.unsafe_set", 0, Some 1);
    ("Array.fill", 0, None);
    ("Array.blit", 2, None);
    ("Array.sort", 1, None);
    ("Bytes.set", 0, Some 1);
    ("Bytes.unsafe_set", 0, Some 1);
    ("Bytes.fill", 0, None);
    ("Bytes.blit", 2, None);
    ("Hashtbl.replace", 0, None);
    ("Hashtbl.add", 0, None);
    ("Hashtbl.remove", 0, None);
    ("Hashtbl.reset", 0, None);
    ("Hashtbl.clear", 0, None);
    ("Hashtbl.filter_map_inplace", 1, None);
    ("Buffer.add_string", 0, None);
    ("Buffer.add_char", 0, None);
    ("Buffer.add_bytes", 0, None);
    ("Buffer.add_substring", 0, None);
    ("Buffer.clear", 0, None);
    ("Buffer.reset", 0, None);
    ("Queue.push", 1, None);
    ("Queue.add", 1, None);
    ("Queue.pop", 0, None);
    ("Queue.take", 0, None);
    ("Queue.take_opt", 0, None);
    ("Queue.clear", 0, None);
    ("Stack.push", 1, None);
    ("Stack.pop", 0, None);
    (* project containers: pooled event queues, trace vectors, stamp
       cells, striped metrics counters *)
    ("Event_queue.add", 0, None);
    ("Event_queue.add_keyed", 0, None);
    ("Event_queue.add_keyed_unit", 0, None);
    ("Event_queue.pop", 0, None);
    ("Vec.push", 0, None);
    ("Vec.set", 0, Some 1);
    ("Vec.clear", 0, None);
    ("Vec.truncate", 0, None);
    ("Stamp.set", 0, None);
    ("Shard_counter.incr", 0, Some 1);
    ("Shard_counter.add", 0, Some 1);
  ]

let find_mutator name =
  List.find_opt (fun (s, _, _) -> name_matches name s) mutator_specs

(* indexed reads a write target may be reached through *)
let index_get_names =
  [ "Array.get"; "Array.unsafe_get"; "Bytes.get"; "Bytes.unsafe_get"; "Vec.get" ]

(* allocators whose result a scope owns outright (freshly allocated
   inside it) — also the RHS shapes that make a top-level binding a
   mutable global for mt/shared-write and mt/non-atomic-read *)
let local_alloc_names =
  [
    "ref"; "Array.make"; "Array.init"; "Array.copy"; "Array.of_list";
    "Array.append"; "Array.sub"; "Array.create_float"; "Array.make_matrix";
    "Bytes.create"; "Bytes.make"; "Bytes.of_string"; "Buffer.create";
    "Hashtbl.create"; "Queue.create"; "Stack.create"; "Vec.create";
    "Stamp.create"; "Event_queue.create";
  ]

(* ------------------------------------------------------------------ *)
(* Type scrutiny for the polycmp family                                *)
(* ------------------------------------------------------------------ *)

let scalar_paths =
  [
    Predef.path_int; Predef.path_char; Predef.path_bool; Predef.path_unit;
    Predef.path_float; Predef.path_string; Predef.path_bytes;
    Predef.path_int32; Predef.path_int64; Predef.path_nativeint;
  ]

let env_of exp =
  match Envaux.env_of_only_summary exp.exp_env with
  | env -> env
  | exception _ -> Env.empty

(* A type is "scalar" when polymorphic compare on it is both correct and
   cheap: the predefined immediates plus float/string/bytes and boxed
   integers.  Type variables are skipped: a genuinely polymorphic helper
   is not an instantiation site. *)
let rec head_is_scalar env ty ~fuel =
  match Types.get_desc ty with
  | Tvar _ | Tunivar _ -> true
  | Tpoly (ty, _) -> head_is_scalar env ty ~fuel
  | Tconstr (p, _, _) ->
    List.exists (fun sp -> Path.same p sp) scalar_paths
    || fuel > 0
       && begin
         match Ctype.expand_head env ty with
         | ty' -> begin
           match Types.get_desc ty' with
           | Tconstr (p', _, _) when Path.same p p' -> false
           | _ -> head_is_scalar env ty' ~fuel:(fuel - 1)
         end
         | exception _ -> false
       end
  | _ -> false

let first_arg_type ty =
  match Types.get_desc ty with
  | Tarrow (_, arg, _, _) -> Some arg
  | _ -> None

let rec result_type ty =
  match Types.get_desc ty with
  | Tarrow (_, _, res, _) -> result_type res
  | _ -> ty

let is_function_type ty =
  match Types.get_desc ty with Tarrow _ -> true | _ -> false

let type_to_string ty =
  match Format.asprintf "%a" Printtyp.type_expr ty with
  | s -> s
  | exception _ -> "<type>"

(* ------------------------------------------------------------------ *)
(* Traversal context                                                   *)
(* ------------------------------------------------------------------ *)

(* What a domain-crossing scope knows about a value: [Owned] — derived
   from the scope's shard/pid parameter (a declared root, or computed
   from one); [Local] — allocated inside the scope; [Foreign] — captured
   from outside.  Ownership is the max over the mentions feeding a
   value, so [t.shards.(s)] with owned [s] is owned. *)
type origin = Foreign | Local | Owned

let rank = function Foreign -> 0 | Local -> 1 | Owned -> 2

type scope_frame = {
  sid : int;  (* stable across the two passes: same traversal order *)
  roots : string list;  (* binding names trusted as owned in this scope *)
}

type ctx = {
  cfg : Lint_config.t;
  file : string;
  mutable top : string;
  mutable findings : Finding.t list;
  mutable suppressed : (Finding.t * string) list;
  mutable allows : Suppress.allow list;  (* innermost first *)
  mutable all_allows : Suppress.allow list;
  mutable hot_module : bool;
  mutable hot_names : string list;
  mutable hot_depth : int;
  mutable bounds_depth : int;
  globals : (Ident.t, unit) Hashtbl.t;
  rec_ids : (Ident.t, unit) Hashtbl.t;
  mutable peeled : expression list;
  (* mt/*: shard-ownership state *)
  reporting : bool;
      (* pass 1 (false) only collects [gwrites]; pass 2 (true) reports *)
  gwrites : (string, int list ref) Hashtbl.t;
      (* top-level mutable binding -> scope ids with a non-owned write;
         shared between the two passes of one compilation unit *)
  mutable scopes : scope_frame list;  (* innermost first *)
  mutable next_sid : int;
  mutable scope_lambdas : (expression * [ `All | `None ]) list;
      (* lambda literals passed to a scope entry point, keyed physically;
         [`All]/[`None]: whether their parameters are owned *)
  origin : (Ident.t, origin) Hashtbl.t;
  mutable target_roots : expression list;
      (* root ident nodes already consumed as write targets, so the read
         rule does not re-flag the mention inside the write itself *)
  domain_scopes : (string, string list) Hashtbl.t;
      (* [@@@lint.domain_scope "fn:root:..."]: function name -> roots *)
  mutable domain_index_names : string list;
  mutable sws : Suppress.single_writer list;  (* innermost first *)
  mutable all_sws : Suppress.single_writer list;
  mutable_globals : (Ident.t, unit) Hashtbl.t;
}

let loc_pos (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let report ctx ~loc ~rule ~severity ~msg =
  if not ctx.reporting then ()
  else begin
    let line, col = loc_pos loc in
    let finding =
      {
        Finding.rule;
        severity;
        file = ctx.file;
        line;
        col;
        context = ctx.top;
        message = msg;
      }
    in
    let matching =
      List.find_opt
        (fun (a : Suppress.allow) ->
          Option.is_some a.justification
          && Suppress.allow_matches ~allow_rule:a.rule ~justified:true ~rule)
        ctx.allows
    in
    match matching with
    | Some a ->
      a.used <- true;
      let why = Option.value a.justification ~default:"" in
      ctx.suppressed <- (finding, why) :: ctx.suppressed
    | None -> begin
      (* [@lint.allow] wins; a justified [@lint.single_writer] in scope
         silences only the mt/* write rules *)
      let sw =
        if Suppress.single_writer_silences rule then
          List.find_opt
            (fun (s : Suppress.single_writer) ->
              Option.is_some s.sw_justification)
            ctx.sws
        else None
      in
      match sw with
      | Some s ->
        s.sw_used <- true;
        ctx.suppressed <- (finding, Option.get s.sw_justification) :: ctx.suppressed
      | None -> ctx.findings <- finding :: ctx.findings
    end
  end

let error ctx ~loc ~rule ~msg =
  report ctx ~loc ~rule ~severity:Finding.Error ~msg

(* Parse and activate [@lint.allow] attributes; returns how many allows
   were pushed so the caller can pop them when the scope closes. *)
let push_allows ctx (attrs : Parsetree.attributes) =
  let pushed = ref 0 in
  List.iter
    (fun parsed ->
      match parsed with
      | Suppress.Malformed (msg, loc) ->
        error ctx ~loc ~rule:"lint/bad-allow" ~msg
      | Suppress.Allow a ->
        if Option.is_none a.justification then
          error ctx ~loc:a.loc ~rule:"lint/missing-justification"
            ~msg:
              (Printf.sprintf
                 "[@lint.allow \"%s\"] needs a justification string" a.rule);
        ctx.allows <- a :: ctx.allows;
        ctx.all_allows <- a :: ctx.all_allows;
        incr pushed)
    (Suppress.parse_attributes attrs);
  !pushed

let pop_allows ctx n =
  for _ = 1 to n do
    match ctx.allows with [] -> () | _ :: rest -> ctx.allows <- rest
  done

let has_attr name (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs

(* Parse and activate [@lint.single_writer]; same scoping discipline as
   the allows stack. *)
let push_sws ctx (attrs : Parsetree.attributes) =
  let pushed = ref 0 in
  List.iter
    (fun parsed ->
      match parsed with
      | Suppress.Sw_malformed (msg, loc) ->
        error ctx ~loc ~rule:"lint/bad-allow" ~msg
      | Suppress.Sw s ->
        if Option.is_none s.sw_justification then
          error ctx ~loc:s.sw_loc ~rule:"lint/missing-justification"
            ~msg:"[@lint.single_writer] needs a justification string";
        ctx.sws <- s :: ctx.sws;
        ctx.all_sws <- s :: ctx.all_sws;
        incr pushed)
    (Suppress.parse_single_writers attrs);
  !pushed

let pop_sws ctx n =
  for _ = 1 to n do
    match ctx.sws with [] -> () | _ :: rest -> ctx.sws <- rest
  done

(* ------------------------------------------------------------------ *)
(* mt/*: scopes and ownership                                          *)
(* ------------------------------------------------------------------ *)

let scope_active ctx = match ctx.scopes with [] -> false | _ :: _ -> true
let cur_roots ctx = match ctx.scopes with [] -> [] | s :: _ -> s.roots
let cur_sid ctx = match ctx.scopes with [] -> -1 | s :: _ -> s.sid

let enter_scope ctx ~roots =
  let sid = ctx.next_sid in
  ctx.next_sid <- sid + 1;
  ctx.scopes <- { sid; roots } :: ctx.scopes

let exit_scope ctx =
  match ctx.scopes with [] -> () | _ :: rest -> ctx.scopes <- rest

(* record an ident's origin, keeping the strongest claim (idents are
   globally unique in a compilation unit, so no scoping is needed) *)
let register_origin ctx id o =
  match Hashtbl.find_opt ctx.origin id with
  | Some o0 when rank o0 >= rank o -> ()
  | _ -> Hashtbl.replace ctx.origin id o

(* The parameters a curried definition binds: this lambda's own, plus —
   through single-case chains — those of the next curried arguments
   (multi-case bodies are fresh closures, not further parameters).  An
   optional argument with a default desugars to a [let] between two
   lambdas of the chain; walk through it. *)
let rec chain_params e =
  Lint_compat.lambda_params e
  @
  match Lint_compat.lambda_bodies e with
  | Some (bodies, true) -> List.concat_map chain_params_body bodies
  | Some (_, false) | None -> []

and chain_params_body e =
  match e.exp_desc with
  | Texp_let (_, _, body) -> chain_params_body body
  | _ -> chain_params e

(* Ownership of an expression: the max rank over its mentions.  An
   Owned ident or a call to a declared shard-index function makes it
   Owned; a fresh mutable allocation or a Local mention makes it Local;
   otherwise it is Foreign. *)
let origin_of_expr ctx e =
  let best = ref Foreign in
  let up o = if rank o > rank !best then best := o in
  let expr_h sub ex =
    (match ex.exp_desc with
     | Texp_ident (Path.Pident id, _, _) -> (
       match Hashtbl.find_opt ctx.origin id with
       | Some o -> up o
       | None -> ())
     | Texp_apply (f, _) -> (
       match f.exp_desc with
       | Texp_ident (p, _, _) ->
         let n = norm_path p in
         if
           List.exists (name_matches n)
             (domain_index_builtin @ ctx.domain_index_names)
         then up Owned
         else if mem_match n local_alloc_names then up Local
       | _ -> ())
     | Texp_record _ | Texp_array _ -> up Local
     | _ -> ());
    if rank !best < rank Owned then Tast_iterator.default_iterator.expr sub ex
  in
  let it = { Tast_iterator.default_iterator with expr = expr_h } in
  it.expr it e;
  !best

(* Walk a write target down to its root: through record fields and
   indexed reads.  Returns the root, the root's ident node (so the read
   rule can skip it), whether any indexing was crossed, and whether any
   index on the path was owned (striped access). *)
let rec resolve_target ctx ex ~indexed ~owned_idx =
  match ex.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some (`Ident id, ex, indexed, owned_idx)
  | Texp_ident (p, _, _) -> Some (`Path (norm_path p), ex, indexed, owned_idx)
  | Texp_field (e', _, _) -> resolve_target ctx e' ~indexed ~owned_idx
  | Texp_apply (f, args) -> (
    match f.exp_desc with
    | Texp_ident (p, _, _) when mem_match (norm_path p) index_get_names -> (
      let pos =
        List.filter_map
          (fun ((lbl : Asttypes.arg_label), a) ->
            match lbl with Nolabel -> a | Labelled _ | Optional _ -> None)
          args
      in
      match pos with
      | cont :: ie :: _ ->
        let oi = owned_idx || rank (origin_of_expr ctx ie) = rank Owned in
        resolve_target ctx cont ~indexed:true ~owned_idx:oi
      | _ -> None)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Closure analysis                                                    *)
(* ------------------------------------------------------------------ *)

let is_lambda e = Option.is_some (Lint_compat.lambda_bodies e)

(* Mark a lambda and, through single-case chains, the lambdas that are
   really just its further curried arguments, so only genuinely nested
   closures are flagged. *)
let rec peel_chain ctx e =
  ctx.peeled <- e :: ctx.peeled;
  match Lint_compat.lambda_bodies e with
  | Some (bodies, true) ->
    List.iter (fun b -> if is_lambda b then peel_chain ctx b) bodies
  | Some (_, false) | None -> ()

let lambda_captures ctx e =
  let used = Hashtbl.create 16 in
  let bound = Hashtbl.create 16 in
  let expr_hook sub ex =
    (match ex.exp_desc with
     | Texp_ident (Path.Pident id, _, _) -> Hashtbl.replace used id ()
     | Texp_let (Recursive, vbs, _) ->
       List.iter
         (fun id -> Hashtbl.replace bound id ())
         (let_bound_idents vbs)
     | _ -> ());
    Tast_iterator.default_iterator.expr sub ex
  in
  let pat_hook : 'k. Tast_iterator.iterator -> 'k general_pattern -> unit =
   fun sub p ->
    List.iter (fun id -> Hashtbl.replace bound id ()) (pat_bound_idents p);
    Tast_iterator.default_iterator.pat sub p
  in
  let it =
    { Tast_iterator.default_iterator with expr = expr_hook; pat = pat_hook }
  in
  it.expr it e;
  Hashtbl.fold
    (fun id () acc ->
      if
        Hashtbl.mem bound id
        || Hashtbl.mem ctx.globals id
        || Hashtbl.mem ctx.rec_ids id
      then acc
      else Ident.name id :: acc)
    used []
  |> List.sort_uniq String.compare

(* ------------------------------------------------------------------ *)
(* Per-identifier checks                                               *)
(* ------------------------------------------------------------------ *)

let check_ident ctx e path =
  let name = norm_path path in
  let loc = e.exp_loc in
  let in_lib = Lint_config.in_lib ctx.cfg ctx.file in
  (* determinism *)
  if in_lib then begin
    if mem_name name self_init_names then
      error ctx ~loc ~rule:"det/random-self-init"
        ~msg:(name ^ " seeds from the environment; use Prng with an explicit seed");
    if
      mem_name name wall_clock_names
      && not (Lint_config.in_realtime ctx.cfg ctx.file)
    then
      error ctx ~loc ~rule:"det/wall-clock"
        ~msg:(name ^ " reads the wall clock; simulated time must come from the engine");
    if
      mem_name name domain_spawn_names
      && not (Lint_config.in_parallel ctx.cfg ctx.file)
    then
      error ctx ~loc ~rule:"det/domain-spawn"
        ~msg:(name ^ " outside lib/parallel; use Domain_pool");
    if atomic_name name && not (Lint_config.in_parallel ctx.cfg ctx.file) then
      error ctx ~loc ~rule:"det/atomic"
        ~msg:
          (name
         ^ " outside lib/parallel; shard-confined plain state synchronized \
            at the window barrier is the concurrency discipline");
    if
      mem_name name hashtbl_order_names
      && Lint_config.in_hashtbl_det ctx.cfg ctx.file
    then
      error ctx ~loc ~rule:"det/hashtbl-order"
        ~msg:(name ^ " visits bindings in hash order; iterate a sorted key list instead")
  end;
  (* unsafe-op hygiene *)
  if in_lib && mem_name name unsafe_names then begin
    if ctx.bounds_depth = 0 then
      error ctx ~loc ~rule:"unsafe/array"
        ~msg:(name ^ " outside a [@@lint.bounds_checked] function")
    else if not (Lint_config.unsafe_allowed ctx.cfg ctx.file) then
      error ctx ~loc ~rule:"unsafe/file"
        ~msg:(name ^ " in a file not on the unsafe-op allowlist")
  end;
  (* allocation, only on the hot path *)
  if ctx.hot_depth > 0 then begin
    if mem_name name alloc_array_names then
      error ctx ~loc ~rule:"alloc/array"
        ~msg:(name ^ " allocates a fresh array on the hot path")
    else if mem_name name alloc_list_names then
      error ctx ~loc ~rule:"alloc/list"
        ~msg:(name ^ " allocates list cells on the hot path")
    else if mem_name name alloc_string_names then
      error ctx ~loc ~rule:"alloc/string"
        ~msg:(name ^ " builds a fresh string/bytes on the hot path")
    else if mem_name name alloc_ref_names then
      error ctx ~loc ~rule:"alloc/construct"
        ~msg:"ref allocates a mutable cell on the hot path"
  end;
  (* polymorphic compare *)
  if in_lib then begin
    let poly_rule =
      if mem_name name polycmp_equal_names then Some "polycmp/equal"
      else if mem_name name polycmp_order_names then Some "polycmp/compare"
      else if mem_name name polycmp_hash_names then Some "polycmp/hash"
      else None
    in
    match poly_rule with
    | None -> ()
    | Some rule -> begin
      match first_arg_type e.exp_type with
      | None -> ()
      | Some arg ->
        let env = env_of e in
        if not (head_is_scalar env arg ~fuel:8) then
          error ctx ~loc ~rule
            ~msg:
              (Printf.sprintf "polymorphic %s instantiated at type %s" name
                 (type_to_string arg))
    end
  end

(* ------------------------------------------------------------------ *)
(* mt/*: the shard-ownership checks                                    *)
(* ------------------------------------------------------------------ *)

let positional_args args =
  List.filter_map
    (fun ((lbl : Asttypes.arg_label), a) ->
      match lbl with Nolabel -> a | Labelled _ | Optional _ -> None)
    args

(* A write inside a domain-crossing scope.  Exempt when the path to the
   root crosses an owned (shard/pid-derived) index, or the root itself
   is owned or locally allocated.  Otherwise classify: a top-level
   mutable binding written by two or more distinct scopes is
   mt/shared-write; an indexed access with a foreign index is
   mt/stripe-index; anything else is mt/escape-mutable. *)
let check_write ctx ~loc ~what ~idx tgt =
  let idx_owned =
    match idx with
    | Some ie -> rank (origin_of_expr ctx ie) = rank Owned
    | None -> false
  in
  match resolve_target ctx tgt ~indexed:(Option.is_some idx) ~owned_idx:idx_owned with
  | None -> ()
  | Some (root, root_node, indexed, owned_idx) ->
    ctx.target_roots <- root_node :: ctx.target_roots;
    if not owned_idx then begin
      let origin_ok =
        match root with
        | `Ident id -> (
          match Hashtbl.find_opt ctx.origin id with
          | Some (Owned | Local) -> true
          | Some Foreign | None -> false)
        | `Path _ -> false
      in
      if not origin_ok then begin
        let key, is_global, disp =
          match root with
          | `Ident id ->
            (Ident.unique_name id, Hashtbl.mem ctx.globals id, Ident.name id)
          | `Path p -> (p, true, p)
        in
        if is_global then begin
          let l =
            match Hashtbl.find_opt ctx.gwrites key with
            | Some l -> l
            | None ->
              let l = ref [] in
              Hashtbl.replace ctx.gwrites key l;
              l
          in
          let sid = cur_sid ctx in
          if (not ctx.reporting) && not (List.mem sid !l) then l := sid :: !l
        end;
        if ctx.reporting then begin
          let nscopes =
            if is_global then
              match Hashtbl.find_opt ctx.gwrites key with
              | Some l -> List.length !l
              | None -> 0
            else 0
          in
          let rule, msg =
            if is_global && nscopes >= 2 then
              ( "mt/shared-write",
                Printf.sprintf
                  "%s: %d distinct domain-crossing scopes write the \
                   top-level mutable binding %s"
                  what nscopes disp )
            else if indexed then
              ( "mt/stripe-index",
                Printf.sprintf
                  "%s into %s: the index is not derived from this scope's \
                   shard/pid parameter"
                  what disp )
            else
              ( "mt/escape-mutable",
                Printf.sprintf
                  "%s: %s is allocated outside this domain-crossing scope; \
                   own it via a declared root, stripe it by the shard \
                   index, use Atomic, or justify [@lint.single_writer]"
                  what disp )
          in
          error ctx ~loc ~rule ~msg
        end
      end
    end

(* A plain read, inside a scope, of a top-level mutable binding that
   some scope writes non-owned: racy unless Atomic (Atomic reads go
   through Atomic.get, not a bare ident mention of a mutable global). *)
let check_scope_read ctx e id =
  if
    ctx.reporting
    && Hashtbl.mem ctx.mutable_globals id
    && (match Hashtbl.find_opt ctx.gwrites (Ident.unique_name id) with
        | Some { contents = _ :: _ } -> true
        | Some { contents = [] } | None -> false)
    && not (List.memq e ctx.target_roots)
  then
    error ctx ~loc:e.exp_loc ~rule:"mt/non-atomic-read"
      ~msg:
        (Printf.sprintf
           "read of top-level mutable %s, which a domain-crossing scope \
            also writes; use Atomic or confine it to one side of the \
            barrier"
           (Ident.name id))

let check_mt ctx e =
  if Lint_config.in_lib ctx.cfg ctx.file then begin
    (* mark closures handed to domain-crossing entry points *)
    (match e.exp_desc with
     | Texp_apply (f, args) -> (
       match f.exp_desc with
       | Texp_ident (p, _, _) -> (
         let n = norm_path p in
         match
           List.find_opt (fun (s, _) -> name_suffix n s) scope_call_specs
         with
         | Some (_, own) ->
           List.iter
             (fun (_, a) ->
               match a with
               | Some ae when is_lambda ae ->
                 ctx.scope_lambdas <- (ae, own) :: ctx.scope_lambdas
               | _ -> ())
             args
         | None -> ())
       | _ -> ())
     | _ -> ());
    if scope_active ctx then begin
      match e.exp_desc with
      | Texp_setfield (tgt, _, _, _) ->
        check_write ctx ~loc:e.exp_loc ~what:"field write" ~idx:None tgt
      | Texp_apply (f, args) -> (
        match f.exp_desc with
        | Texp_ident (p, _, _) -> (
          match find_mutator (norm_path p) with
          | Some (mname, ti, ii) -> (
            let pos = positional_args args in
            let idx = Option.bind ii (fun i -> List.nth_opt pos i) in
            match List.nth_opt pos ti with
            | Some tgt -> check_write ctx ~loc:e.exp_loc ~what:mname ~idx tgt
            | None -> ())
          | None -> ())
        | _ -> ())
      | Texp_match (scrut, cases, _) ->
        (* destructuring an owned/local value keeps its ownership *)
        let o = origin_of_expr ctx scrut in
        if rank o > rank Foreign then
          List.iter
            (fun c ->
              List.iter
                (fun id -> register_origin ctx id o)
                (pat_bound_idents c.c_lhs))
            cases
      | Texp_ident (Path.Pident id, _, _) -> check_scope_read ctx e id
      | _ -> ()
    end
  end

(* ------------------------------------------------------------------ *)
(* Expression / binding traversal                                      *)
(* ------------------------------------------------------------------ *)

let rec expr_hook ctx it e =
  let pushed = push_allows ctx e.exp_attributes in
  let pushed_sw = push_sws ctx e.exp_attributes in
  (* a lambda literal previously marked as the closure argument of a
     domain-crossing call becomes a scope here, covering its body *)
  let entered =
    match List.assq_opt e ctx.scope_lambdas with
    | Some own when Lint_config.in_lib ctx.cfg ctx.file ->
      enter_scope ctx ~roots:[];
      (match own with
       | `All ->
         List.iter (fun id -> register_origin ctx id Owned) (chain_params e)
       | `None -> ());
      true
    | Some _ | None -> false
  in
  (match e.exp_desc with
   | Texp_let (Recursive, vbs, _) ->
     List.iter
       (fun id -> Hashtbl.replace ctx.rec_ids id ())
       (let_bound_idents vbs)
   | _ -> ());
  check_mt ctx e;
  if is_lambda e && not (List.memq e ctx.peeled) then begin
    peel_chain ctx e;
    if ctx.hot_depth > 0 then begin
      match lambda_captures ctx e with
      | [] -> ()
      | captured ->
        error ctx ~loc:e.exp_loc ~rule:"alloc/closure"
          ~msg:
            ("closure capturing " ^ String.concat ", " captured
           ^ " allocates on the hot path")
    end
  end;
  (match e.exp_desc with
   | Texp_ident (path, _, _) -> check_ident ctx e path
   | _ when ctx.hot_depth = 0 -> ()
   | Texp_tuple _ ->
     error ctx ~loc:e.exp_loc ~rule:"alloc/tuple"
       ~msg:"tuple construction allocates on the hot path"
   | Texp_record _ ->
     error ctx ~loc:e.exp_loc ~rule:"alloc/record"
       ~msg:"record construction allocates on the hot path"
   | Texp_array _ ->
     error ctx ~loc:e.exp_loc ~rule:"alloc/array"
       ~msg:"array literal allocates on the hot path"
   | Texp_construct (_, cd, args) -> begin
     match args with
     | [] -> ()
     | _ :: _ ->
       error ctx ~loc:e.exp_loc ~rule:"alloc/construct"
         ~msg:(cd.Types.cstr_name ^ " application allocates on the hot path")
   end
   | Texp_variant (_, Some _) ->
     error ctx ~loc:e.exp_loc ~rule:"alloc/construct"
       ~msg:"polymorphic-variant application allocates on the hot path"
   | Texp_lazy _ ->
     error ctx ~loc:e.exp_loc ~rule:"alloc/construct"
       ~msg:"lazy suspension allocates on the hot path"
   | _ -> ());
  Tast_iterator.default_iterator.expr it e;
  if entered then exit_scope ctx;
  pop_sws ctx pushed_sw;
  pop_allows ctx pushed

and process_binding ctx it ~top vb =
  let name =
    match let_bound_idents [ vb ] with
    | [ id ] -> Ident.name id
    | _ -> ctx.top
  in
  let saved_top = ctx.top in
  if top then ctx.top <- name;
  let pushed = push_allows ctx vb.vb_attributes in
  let pushed_sw = push_sws ctx vb.vb_attributes in
  let in_lib = Lint_config.in_lib ctx.cfg ctx.file in
  (* a binding evaluated inside a scope: owned when named as one of the
     scope's roots, otherwise the ownership of its right-hand side *)
  if in_lib && scope_active ctx then begin
    let roots = cur_roots ctx in
    let o_rhs = lazy (origin_of_expr ctx vb.vb_expr) in
    List.iter
      (fun id ->
        let o =
          if mem_name (Ident.name id) roots then Owned else Lazy.force o_rhs
        in
        register_origin ctx id o)
      (let_bound_idents [ vb ])
  end;
  (* a declared domain-crossing scope: a floating
     [@@@lint.domain_scope "fn:root:..."] naming this binding, or the
     binding-attached [@@lint.domain_scope "root" ...] *)
  let mt_scope =
    if not in_lib then None
    else
      match Hashtbl.find_opt ctx.domain_scopes name with
      | Some roots -> Some roots
      | None ->
        List.find_map
          (fun (a : Parsetree.attribute) ->
            if String.equal a.attr_name.txt "lint.domain_scope" then begin
              match Suppress.strings_of_payload a.attr_payload with
              | Some roots -> Some roots
              | None ->
                error ctx ~loc:a.attr_loc ~rule:"lint/bad-allow"
                  ~msg:
                    "[@@lint.domain_scope] payload must be string literals \
                     naming owned roots";
                Some []
            end
            else None)
          vb.vb_attributes
  in
  (match mt_scope with
   | Some roots ->
     enter_scope ctx ~roots;
     List.iter
       (fun id ->
         if mem_name (Ident.name id) roots then register_origin ctx id Owned)
       (chain_params vb.vb_expr)
   | None -> ());
  let is_hot =
    has_attr "lint.zero_alloc_hot" vb.vb_attributes
    || (top && (ctx.hot_module || mem_name name ctx.hot_names))
  in
  let is_bounds = has_attr "lint.bounds_checked" vb.vb_attributes in
  if is_hot then ctx.hot_depth <- ctx.hot_depth + 1;
  if is_bounds then ctx.bounds_depth <- ctx.bounds_depth + 1;
  if is_hot && is_function_type vb.vb_pat.pat_type then begin
    let res = result_type vb.vb_pat.pat_type in
    let env = env_of vb.vb_expr in
    let is_float =
      match Types.get_desc res with
      | Tconstr (p, _, _) ->
        Path.same p Predef.path_float
        || begin
          match Ctype.expand_head env res with
          | res' -> begin
            match Types.get_desc res' with
            | Tconstr (p', _, _) -> Path.same p' Predef.path_float
            | _ -> false
          end
          | exception _ -> false
        end
      | _ -> false
    in
    if is_float then
      error ctx ~loc:vb.vb_loc ~rule:"alloc/boxed-float"
        ~msg:(name ^ " returns float; the result is boxed on every call")
  end;
  (* the outermost lambda chain of a top-level binding is the function
     itself, not a per-call closure *)
  if top && is_lambda vb.vb_expr then peel_chain ctx vb.vb_expr;
  expr_hook ctx it vb.vb_expr;
  if is_hot then ctx.hot_depth <- ctx.hot_depth - 1;
  if is_bounds then ctx.bounds_depth <- ctx.bounds_depth - 1;
  (match mt_scope with Some _ -> exit_scope ctx | None -> ());
  pop_sws ctx pushed_sw;
  pop_allows ctx pushed;
  if not top then ctx.top <- saved_top

(* the RHS shapes that make a top-level binding a mutable global for
   mt/shared-write and mt/non-atomic-read *)
let rec is_mutable_alloc (e : expression) =
  match e.exp_desc with
  | Texp_array _ -> true
  | Texp_record { fields; _ } ->
    Array.exists
      (fun ((lbl : Types.label_description), _) ->
        match lbl.lbl_mut with Asttypes.Mutable -> true | Asttypes.Immutable -> false)
      fields
  | Texp_apply (f, _) -> (
    match f.exp_desc with
    | Texp_ident (p, _, _) -> mem_match (norm_path p) local_alloc_names
    | _ -> false)
  | Texp_let (_, _, body) | Texp_sequence (_, body) -> is_mutable_alloc body
  | _ -> false

(* Floating [@@@lint.zero_alloc_hot] / file-scoped [@@@lint.allow]: the
   pre-pass collects them wherever they appear so placement is free.
   Likewise [@@@lint.domain_scope "fn:root:..."] (declare a named
   function as a domain-crossing scope with the given owned roots) and
   [@@@lint.domain_index "fn" ...] (declare functions whose result is
   the executing shard/pid index). *)
let pre_pass ctx (str : structure) =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_attribute attr ->
        let attr_name = attr.Parsetree.attr_name.txt in
        if String.equal attr_name "lint.zero_alloc_hot" then begin
          match Suppress.strings_of_payload attr.Parsetree.attr_payload with
          | Some [] -> ctx.hot_module <- true
          | Some names -> ctx.hot_names <- names @ ctx.hot_names
          | None ->
            error ctx ~loc:attr.Parsetree.attr_loc ~rule:"lint/bad-allow"
              ~msg:
                "[@@@lint.zero_alloc_hot] payload must be function-name \
                 string literals"
        end
        else if String.equal attr_name "lint.domain_scope" then begin
          match Suppress.strings_of_payload attr.Parsetree.attr_payload with
          | Some ((_ :: _) as specs) ->
            List.iter
              (fun spec ->
                match String.split_on_char ':' spec with
                | fname :: roots when String.length fname > 0 ->
                  Hashtbl.replace ctx.domain_scopes fname roots
                | _ ->
                  error ctx ~loc:attr.Parsetree.attr_loc ~rule:"lint/bad-allow"
                    ~msg:
                      (Printf.sprintf
                         "[@@@lint.domain_scope] entry %S: expected \
                          \"function\" or \"function:root:...\""
                         spec))
              specs
          | Some [] | None ->
            error ctx ~loc:attr.Parsetree.attr_loc ~rule:"lint/bad-allow"
              ~msg:
                "[@@@lint.domain_scope] payload must be \
                 \"function:root:...\" string literals"
        end
        else if String.equal attr_name "lint.domain_index" then begin
          match Suppress.strings_of_payload attr.Parsetree.attr_payload with
          | Some ((_ :: _) as names) ->
            ctx.domain_index_names <- names @ ctx.domain_index_names
          | Some [] | None ->
            error ctx ~loc:attr.Parsetree.attr_loc ~rule:"lint/bad-allow"
              ~msg:
                "[@@@lint.domain_index] payload must be function-name \
                 string literals"
        end
        else if String.equal attr_name "lint.allow" then
          ignore (push_allows ctx [ attr ])
      | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let ids = let_bound_idents [ vb ] in
            List.iter (fun id -> Hashtbl.replace ctx.globals id ()) ids;
            if is_mutable_alloc vb.vb_expr then
              List.iter
                (fun id -> Hashtbl.replace ctx.mutable_globals id ())
                ids)
          vbs
      | _ -> ())
    str.str_items

(* Two passes over the same tree share [gwrites]: the first collects
   which scopes write each top-level mutable binding (mt/shared-write
   needs the whole unit before any site can be classified, and
   mt/non-atomic-read needs to know a write exists at all); the second
   reports.  Scope ids are stable because both passes traverse in the
   same order. *)
let scan_structure ~cfg ~file (str : structure) =
  let gwrites = Hashtbl.create 16 in
  let run_pass ~reporting =
    let ctx =
      {
        cfg;
        file;
        top = "<toplevel>";
        findings = [];
        suppressed = [];
        allows = [];
        all_allows = [];
        hot_module = false;
        hot_names = [];
        hot_depth = 0;
        bounds_depth = 0;
        globals = Hashtbl.create 64;
        rec_ids = Hashtbl.create 16;
        peeled = [];
        reporting;
        gwrites;
        scopes = [];
        next_sid = 0;
        scope_lambdas = [];
        origin = Hashtbl.create 64;
        target_roots = [];
        domain_scopes = Hashtbl.create 8;
        domain_index_names = [];
        sws = [];
        all_sws = [];
        mutable_globals = Hashtbl.create 16;
      }
    in
    pre_pass ctx str;
    let it = ref Tast_iterator.default_iterator in
    let structure_item sub (item : structure_item) =
      match item.str_desc with
      | Tstr_value (rf, vbs) ->
        (match rf with
         | Recursive ->
           List.iter
             (fun id -> Hashtbl.replace ctx.rec_ids id ())
             (let_bound_idents vbs)
         | Nonrecursive -> ());
        List.iter (fun vb -> process_binding ctx sub ~top:true vb) vbs
      | Tstr_attribute _ -> ()  (* handled by the pre-pass *)
      | _ -> Tast_iterator.default_iterator.structure_item sub item
    in
    it :=
      {
        Tast_iterator.default_iterator with
        structure_item;
        expr = (fun sub e -> expr_hook ctx sub e);
        value_binding = (fun sub vb -> process_binding ctx sub ~top:false vb);
      };
    !it.structure !it str;
    ctx
  in
  ignore (run_pass ~reporting:false);
  let ctx = run_pass ~reporting:true in
  (* justified allows that silenced nothing are themselves suspicious *)
  List.iter
    (fun (a : Suppress.allow) ->
      if Option.is_some a.justification && not a.used then begin
        let line, col = loc_pos a.loc in
        ctx.findings <-
          {
            Finding.rule = "lint/unused-allow";
            severity = Finding.Warning;
            file = ctx.file;
            line;
            col;
            context = "<attribute>";
            message =
              Printf.sprintf "[@lint.allow \"%s\"] suppresses nothing" a.rule;
          }
          :: ctx.findings
      end)
    ctx.all_allows;
  List.iter
    (fun (s : Suppress.single_writer) ->
      if Option.is_some s.sw_justification && not s.sw_used then begin
        let line, col = loc_pos s.sw_loc in
        ctx.findings <-
          {
            Finding.rule = "lint/unused-allow";
            severity = Finding.Warning;
            file = ctx.file;
            line;
            col;
            context = "<attribute>";
            message = "[@lint.single_writer] suppresses nothing";
          }
          :: ctx.findings
      end)
    ctx.all_sws;
  {
    findings = Finding.sort ctx.findings;
    suppressed =
      List.sort
        (fun (a, _) (b, _) -> Finding.compare_by_site a b)
        ctx.suppressed;
  }

(* ------------------------------------------------------------------ *)
(* Cmt entry points                                                    *)
(* ------------------------------------------------------------------ *)

let source_of_cmt (cmt : Cmt_format.cmt_infos) ~cmt_path =
  let raw =
    match cmt.cmt_sourcefile with
    | Some f -> f
    | None -> Filename.basename cmt_path
  in
  let raw = Lint_config.normalize_path raw in
  (* strip any build prefix so scope matching sees lib/...; the compiler
     usually records the path relative to the build root already *)
  let marker = "_build/default/" in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length raw then raw
    else if String.equal (String.sub raw i mlen) marker then
      String.sub raw (i + mlen) (String.length raw - i - mlen)
    else find (i + 1)
  in
  find 0

type cmt_result =
  | Scanned of string * scan  (* source path, results *)
  | Skipped of string  (* warning *)

let scan_cmt ~cfg cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception exn ->
    Skipped
      (Printf.sprintf "lint: cannot read %s (%s); skipped" cmt_path
         (Printexc.to_string exn))
  | cmt -> begin
    match cmt.cmt_annots with
    | Implementation str ->
      let file = source_of_cmt cmt ~cmt_path in
      Scanned (file, scan_structure ~cfg ~file str)
    | _ -> Skipped (Printf.sprintf "lint: %s is not an implementation; skipped" cmt_path)
  end
