type t = { id : string; family : string; doc : string }

let mk id doc =
  match String.index_opt id '/' with
  | None -> invalid_arg ("Rules.mk: rule id without family: " ^ id)
  | Some i -> { id; family = String.sub id 0 i; doc }

let all =
  [
    (* determinism: simulations and fuzz campaigns must stay
       byte-reproducible from the seed *)
    mk "det/random-self-init"
      "Random.self_init seeds from the environment; use Prng with an \
       explicit seed";
    mk "det/wall-clock"
      "wall-clock reads (Unix.gettimeofday/Unix.time/Sys.time) leak real \
       time into simulated time";
    mk "det/domain-spawn"
      "Domain.spawn outside lib/parallel bypasses the deterministic domain \
       pool";
    mk "det/atomic"
      "Atomic outside lib/parallel; shards own their state outright and \
       synchronize only at the window barrier";
    mk "det/hashtbl-order"
      "Hashtbl.iter/fold visit in hash order, which depends on insertion \
       history; sort the keys or keep a deterministic index";
    (* allocation: modules/functions under [@@@lint.zero_alloc_hot] *)
    mk "alloc/tuple" "tuple construction allocates on the hot path";
    mk "alloc/record" "record construction allocates on the hot path";
    mk "alloc/construct"
      "non-constant constructor application (Some, ::, ref, lazy) allocates \
       on the hot path";
    mk "alloc/closure" "capturing closure allocates on the hot path";
    mk "alloc/array"
      "array literal or copying Array operation allocates on the hot path";
    mk "alloc/list" "List combinator allocates on the hot path";
    mk "alloc/string"
      "string/bytes building (^, String.sub, Printf.sprintf, ...) allocates \
       on the hot path";
    mk "alloc/boxed-float"
      "returning float from a hot function boxes the result";
    (* unsafe-op hygiene *)
    mk "unsafe/array"
      "Array/Bytes.unsafe_get/set outside a [@@lint.bounds_checked] \
       function";
    mk "unsafe/file"
      "unsafe indexing in a file that is not on the unsafe-op allowlist";
    (* polymorphic compare *)
    mk "polycmp/equal"
      "polymorphic =/<> instantiated at a non-scalar type; write a typed \
       equality";
    mk "polycmp/compare"
      "polymorphic compare/min/max/ordering instantiated at a non-scalar \
       type";
    mk "polycmp/hash" "Hashtbl.hash instantiated at a non-scalar type";
    (* shard ownership: domain-crossing scopes (closures handed to
       Barrier_team / Domain.spawn, or functions declared with
       [@@@lint.domain_scope]) may write only state they own — their
       declared roots, locally allocated values, or shared containers
       indexed by a shard/pid-derived expression *)
    mk "mt/escape-mutable"
      "a mutable value allocated outside a domain-crossing scope is \
       written inside it without striping, Atomic, or a justified \
       [@lint.single_writer]";
    mk "mt/shared-write"
      "two distinct domain-crossing scopes in the same compilation unit \
       write the same top-level mutable binding";
    mk "mt/non-atomic-read"
      "a domain-crossing scope reads a top-level mutable binding that \
       some scope also writes, without Atomic";
    mk "mt/stripe-index"
      "shared-container access inside a domain-crossing scope whose index \
       is not derived from the shard/pid parameter";
    (* lint hygiene *)
    mk "lint/missing-justification"
      "[@lint.allow] without a justification string; write [@lint.allow \
       \"rule\" \"why\"]";
    mk "lint/bad-allow" "malformed [@lint.allow] payload or unknown rule id";
    mk "lint/unused-allow" "[@lint.allow] that suppressed nothing";
  ]

let ids = List.map (fun r -> r.id) all
let families = List.sort_uniq String.compare (List.map (fun r -> r.family) all)

let is_known id =
  List.exists (fun r -> String.equal r.id id) all
  || List.exists (fun f -> String.equal f id) families

let find id = List.find_opt (fun r -> String.equal r.id id) all
