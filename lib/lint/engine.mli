(** The typed-AST lint pass over .cmt files. *)

type scan = {
  findings : Finding.t list;
  suppressed : (Finding.t * string) list;
}

val empty_scan : scan
val merge : scan -> scan -> scan

val scan_structure :
  cfg:Lint_config.t -> file:string -> Typedtree.structure -> scan
(** Scan one typedtree; [file] is the source path used for scoping and
    reporting.  The compiler's load path must already be initialised
    (see {!Lint_compat.init_load_path}). *)

type cmt_result = Scanned of string * scan | Skipped of string

val scan_cmt : cfg:Lint_config.t -> string -> cmt_result
(** Read and scan one .cmt.  Unreadable or non-implementation cmts are
    [Skipped] with a warning, never an error: the lint only fails on
    genuine findings. *)
