(* OCaml 5.2: [Texp_function] is n-ary (a parameter list plus a body that is
   either an expression or a case list), and [Load_path.init] grew
   visible/hidden labels.  Untested locally (the pinned toolchain is 5.1);
   kept in sync with the 5.2 typedtree by CI. *)

let lambda_bodies (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_function { params = _; body } -> begin
    match body with
    | Typedtree.Tfunction_body b -> Some ([ b ], true)
    | Typedtree.Tfunction_cases fc ->
      let bodies = List.map (fun c -> c.Typedtree.c_rhs) fc.Typedtree.fc_cases in
      Some (bodies, List.length bodies = 1)
  end
  | _ -> None

let lambda_params (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_function { params; body } ->
    let of_param (p : Typedtree.function_param) =
      match p.Typedtree.fp_kind with
      | Typedtree.Tparam_pat pat -> Typedtree.pat_bound_idents pat
      | Typedtree.Tparam_optional_default (pat, _) ->
        Typedtree.pat_bound_idents pat
    in
    let of_body =
      match body with
      | Typedtree.Tfunction_body _ -> []
      | Typedtree.Tfunction_cases fc ->
        List.concat_map
          (fun c -> Typedtree.pat_bound_idents c.Typedtree.c_lhs)
          fc.Typedtree.fc_cases
    in
    List.concat_map of_param params @ of_body
  | _ -> []

let init_load_path dirs =
  Load_path.init ~auto_include:Load_path.no_auto_include ~visible:dirs
    ~hidden:[]
