(** The rule registry: every diagnostic the engine can emit. *)

type t = { id : string; family : string; doc : string }

val all : t list
val ids : string list
val families : string list

val is_known : string -> bool
(** True for exact rule ids and for bare family names (valid in
    [@lint.allow]). *)

val find : string -> t option
