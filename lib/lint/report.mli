(** Text and JSON reporters over a lint run. *)

type summary = {
  findings : Finding.t list;
  baselined : Finding.t list;
  suppressed : (Finding.t * string) list;
  stale_baseline : string list;
  warnings : string list;
}

val errors : summary -> Finding.t list
val ok : summary -> bool
(** True when there are no fresh error-severity findings. *)

val text : Format.formatter -> summary -> unit
val json : Format.formatter -> summary -> unit
