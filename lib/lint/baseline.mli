(** Committed fingerprint baseline: lets the lint land strict for new
    code while known findings are burned down. *)

type t = { entries : string list }

val empty : t
val load : string -> t option
val save : string -> Finding.t list -> unit

val apply : t -> Finding.t list -> Finding.t list * Finding.t list * string list
(** [apply t findings] is [(fresh, baselined, stale)]: findings not in the
    baseline, findings absorbed by it, and baseline entries that matched
    nothing (candidates for deletion). *)
