(** Version-dependent corners of compiler-libs, selected at build time
    (see the copy rules in [dune]).  Everything else rdt_lint touches is
    stable across 5.1 and 5.2. *)

val lambda_bodies : Typedtree.expression -> (Typedtree.expression list * bool) option
(** [lambda_bodies e] is [Some (bodies, single)] when [e] is a lambda:
    [bodies] are the right-hand sides of its cases and [single] is true
    when the lambda has exactly one case, i.e. when an immediately nested
    lambda is just the next argument of a curried definition rather than
    a closure returned per call.  [None] when [e] is not a lambda. *)

val lambda_params : Typedtree.expression -> Ident.t list
(** Identifiers bound by this lambda node's own parameter (pattern-bound
    idents of its cases' left-hand sides on 5.1, of its parameter list and
    body cases on 5.2); [[]] when [e] is not a lambda.  The mt/* pass
    walks a curried chain with {!lambda_bodies} and collects these to find
    a domain-crossing scope's owned roots. *)

val init_load_path : string list -> unit
(** Reset the compiler's load path to exactly the given directories. *)
