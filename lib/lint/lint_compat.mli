(** Version-dependent corners of compiler-libs, selected at build time
    (see the copy rules in [dune]).  Everything else rdt_lint touches is
    stable across 5.1 and 5.2. *)

val lambda_bodies : Typedtree.expression -> (Typedtree.expression list * bool) option
(** [lambda_bodies e] is [Some (bodies, single)] when [e] is a lambda:
    [bodies] are the right-hand sides of its cases and [single] is true
    when the lambda has exactly one case, i.e. when an immediately nested
    lambda is just the next argument of a curried definition rather than
    a closure returned per call.  [None] when [e] is not a lambda. *)

val init_load_path : string list -> unit
(** Reset the compiler's load path to exactly the given directories. *)
