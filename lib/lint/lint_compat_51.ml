(* OCaml 5.1: [Texp_function] carries one argument and a case list; curried
   definitions show up as single-case chains of nested lambdas. *)

let lambda_bodies (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_function { cases; _ } ->
    let bodies = List.map (fun c -> c.Typedtree.c_rhs) cases in
    Some (bodies, List.length cases = 1)
  | _ -> None

let lambda_params (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_function { cases; _ } ->
    List.concat_map
      (fun c -> Typedtree.pat_bound_idents c.Typedtree.c_lhs)
      cases
  | _ -> []

let init_load_path dirs =
  Load_path.init ~auto_include:Load_path.no_auto_include dirs
