type allow = {
  rule : string;  (* exact rule id or bare family name *)
  justification : string option;
  loc : Location.t;
  mutable used : bool;
}

type parsed = Allow of allow | Malformed of string * Location.t

let family_of rule =
  match String.index_opt rule '/' with
  | None -> rule
  | Some i -> String.sub rule 0 i

(* The matching core, kept pure so the qcheck property in test_lint.ml can
   drive it directly: an allow silences a rule iff it carries a
   justification and names either the exact rule or its family. *)
let allow_matches ~allow_rule ~justified ~rule =
  justified
  && (String.equal allow_rule rule || String.equal allow_rule (family_of rule))

let silences ~allows ~rule =
  List.exists
    (fun (allow_rule, justified) -> allow_matches ~allow_rule ~justified ~rule)
    allows

(* [@lint.allow "rule" "justification"] — the payload is parsed from the
   Parsetree attribute that survives into the typedtree. *)

let rec payload_strings (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some [ s ]
  | Pexp_apply (f, args) ->
    List.fold_left
      (fun acc (_, arg) ->
        match (acc, payload_strings arg) with
        | Some acc, Some ss -> Some (acc @ ss)
        | _ -> None)
      (payload_strings f) args
  | Pexp_tuple es ->
    List.fold_left
      (fun acc e ->
        match (acc, payload_strings e) with
        | Some acc, Some ss -> Some (acc @ ss)
        | _ -> None)
      (Some []) es
  | _ -> None

let strings_of_payload (p : Parsetree.payload) =
  match p with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> payload_strings e
  | PStr [] -> Some []
  | _ -> None

let parse_attribute (attr : Parsetree.attribute) =
  if not (String.equal attr.attr_name.txt "lint.allow") then None
  else
    let loc = attr.attr_loc in
    match strings_of_payload attr.attr_payload with
    | Some (rule :: rest) ->
      let justification =
        match rest with
        | [] -> None
        | ss -> Some (String.concat " " ss)
      in
      if Rules.is_known rule then
        Some (Allow { rule; justification; loc; used = false })
      else Some (Malformed ("unknown rule id " ^ rule, loc))
    | Some [] -> Some (Malformed ("[@lint.allow] without a rule id", loc))
    | None ->
      Some (Malformed ("[@lint.allow] payload must be string literals", loc))

let parse_attributes attrs = List.filter_map parse_attribute attrs

(* [@lint.single_writer "why"] — the mt/* counterpart of [@lint.allow]:
   asserts that every domain reaching the annotated write is the same one
   (a guard, a mutex, or a pinned handler makes it single-writer even
   though the analysis cannot see why).  It silences only the mt/* write
   rules, never the read rule, and must carry a justification. *)

type single_writer = {
  sw_justification : string option;
  sw_loc : Location.t;
  mutable sw_used : bool;
}

type sw_parsed = Sw of single_writer | Sw_malformed of string * Location.t

let single_writer_silences rule =
  match rule with
  | "mt/escape-mutable" | "mt/shared-write" | "mt/stripe-index" -> true
  | _ -> false

let parse_single_writer (attr : Parsetree.attribute) =
  if not (String.equal attr.attr_name.txt "lint.single_writer") then None
  else
    let loc = attr.attr_loc in
    match strings_of_payload attr.attr_payload with
    | Some [] -> Some (Sw { sw_justification = None; sw_loc = loc; sw_used = false })
    | Some ss ->
      Some
        (Sw
           {
             sw_justification = Some (String.concat " " ss);
             sw_loc = loc;
             sw_used = false;
           })
    | None ->
      Some
        (Sw_malformed
           ("[@lint.single_writer] payload must be string literals", loc))

let parse_single_writers attrs = List.filter_map parse_single_writer attrs
