(* Top-level driver: discover cmts, initialise the compiler's load path,
   scan, apply the baseline, render.  Exit status 0 unless there are
   fresh error-severity findings (or --update-baseline rewrote the
   file). *)

type options = {
  root : string;
  dirs : string list;
  baseline_file : string option;
  json : bool;
  update_baseline : bool;
  output : string option;  (* write the report here as well as stdout *)
  only : string option;  (* rule-id prefix filter, e.g. "mt/" *)
}

let default_options =
  {
    root = ".";
    dirs = [ "lib" ];
    baseline_file = None;
    json = false;
    update_baseline = false;
    output = None;
    only = None;
  }

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let scan ?(cfg = Lint_config.default) ~root ~dirs () =
  let d = Discover.find_cmts ~root ~dirs in
  Lint_compat.init_load_path d.load_dirs;
  Envaux.reset_cache ();
  let scans = ref Engine.empty_scan in
  let warnings = ref d.warnings in
  List.iter
    (fun cmt ->
      match Engine.scan_cmt ~cfg cmt with
      | Engine.Scanned (_, s) -> scans := Engine.merge !scans s
      | Engine.Skipped w -> warnings := w :: !warnings)
    d.cmts;
  ( {
      Engine.findings = Finding.sort !scans.findings;
      suppressed = !scans.suppressed;
    },
    List.rev !warnings )

let run ?(cfg = Lint_config.default) opts =
  let scans, warns = scan ~cfg ~root:opts.root ~dirs:opts.dirs () in
  let all_findings = scans.Engine.findings in
  (* --only narrows reporting (and the view of the baseline, so other
     families' baselined fingerprints do not surface as stale) to one
     rule-id prefix; both reporters see the filtered summary.  The
     baseline is always rewritten from the unfiltered scan so a filtered
     run cannot silently drop other families' entries. *)
  let keep rule =
    match opts.only with
    | None -> true
    | Some prefix -> has_prefix ~prefix rule
  in
  let findings = List.filter (fun (f : Finding.t) -> keep f.rule) all_findings in
  let suppressed =
    List.filter (fun ((f : Finding.t), _) -> keep f.rule) scans.Engine.suppressed
  in
  let baseline =
    match opts.baseline_file with
    | None -> Baseline.empty
    | Some path -> Option.value (Baseline.load path) ~default:Baseline.empty
  in
  let baseline =
    { Baseline.entries = List.filter keep baseline.Baseline.entries }
  in
  let fresh, baselined, stale = Baseline.apply baseline findings in
  let summary =
    {
      Report.findings = fresh;
      baselined;
      suppressed;
      stale_baseline = stale;
      warnings = warns;
    }
  in
  if opts.update_baseline then begin
    match opts.baseline_file with
    | Some path -> Baseline.save path all_findings
    | None -> ()
  end;
  let render ppf =
    if opts.json then Report.json ppf summary else Report.text ppf summary
  in
  render Format.std_formatter;
  (match opts.output with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     let ppf = Format.formatter_of_out_channel oc in
     render ppf;
     Format.pp_print_flush ppf ();
     close_out oc);
  if Report.ok summary then 0 else 1
