type summary = {
  findings : Finding.t list;  (* fresh findings, sorted *)
  baselined : Finding.t list;
  suppressed : (Finding.t * string) list;
  stale_baseline : string list;
  warnings : string list;
}

let errors s =
  List.filter
    (fun (f : Finding.t) ->
      match f.severity with Finding.Error -> true | Finding.Warning -> false)
    s.findings

let ok s = List.compare_length_with (errors s) 0 = 0

let text ppf s =
  List.iter (fun w -> Format.fprintf ppf "%s@." w) s.warnings;
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) s.findings;
  List.iter
    (fun fp -> Format.fprintf ppf "baseline: stale entry %s@." fp)
    s.stale_baseline;
  let n_err = List.length (errors s) in
  let n_warn = List.length s.findings - n_err in
  Format.fprintf ppf
    "rdt_lint: %d error%s, %d warning%s, %d suppressed, %d baselined@."
    n_err
    (if n_err = 1 then "" else "s")
    n_warn
    (if n_warn = 1 then "" else "s")
    (List.length s.suppressed) (List.length s.baselined)

let json ppf s =
  let fields (f : Finding.t) = Finding.to_json f in
  Format.fprintf ppf "{@.";
  Format.fprintf ppf "  \"schema\": \"rdt-lint/1\",@.";
  Format.fprintf ppf "  \"errors\": %d,@." (List.length (errors s));
  Format.fprintf ppf "  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "@.    %s" (fields f))
    s.findings;
  Format.fprintf ppf "@.  ],@.";
  Format.fprintf ppf "  \"baselined\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "@.    %s" (fields f))
    s.baselined;
  Format.fprintf ppf "@.  ],@.";
  Format.fprintf ppf "  \"suppressed\": [";
  List.iteri
    (fun i (f, why) ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf
        "@.    { \"finding\": %s, \"justification\": \"%s\" }" (fields f)
        (Finding.json_escape why))
    s.suppressed;
  Format.fprintf ppf "@.  ],@.";
  Format.fprintf ppf "  \"stale_baseline\": [%s],@."
    (String.concat ", "
       (List.map
          (fun e -> "\"" ^ Finding.json_escape e ^ "\"")
          s.stale_baseline));
  Format.fprintf ppf "  \"warnings\": [%s]@."
    (String.concat ", "
       (List.map (fun w -> "\"" ^ Finding.json_escape w ^ "\"") s.warnings));
  Format.fprintf ppf "}@."
