type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  context : string;  (* enclosing top-level binding, or "<toplevel>" *)
  message : string;
}

let severity_label = function Error -> "error" | Warning -> "warning"

let compare_by_site a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let sort findings = List.sort compare_by_site findings

(* Fingerprints identify a finding for the baseline without depending on
   line numbers, so unrelated edits above a baselined site do not churn
   the baseline file.  Findings that share (rule, file, context) are
   disambiguated by their ordinal in source order. *)
let fingerprints findings =
  let counts = Hashtbl.create 16 in
  List.map
    (fun f ->
      let key = f.rule ^ "|" ^ f.file ^ "|" ^ f.context in
      let k =
        match Hashtbl.find_opt counts key with None -> 0 | Some n -> n
      in
      Hashtbl.replace counts key (k + 1);
      Printf.sprintf "%s|%d" key k)
    (sort findings)

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s (in %s)" f.file f.line f.col f.rule
    f.message f.context

let to_string f = Format.asprintf "%a" pp f

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    "{ \"rule\": \"%s\", \"severity\": \"%s\", \"file\": \"%s\", \"line\": \
     %d, \"col\": %d, \"context\": \"%s\", \"message\": \"%s\" }"
    (json_escape f.rule)
    (severity_label f.severity)
    (json_escape f.file) f.line f.col (json_escape f.context)
    (json_escape f.message)
