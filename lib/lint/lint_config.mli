(** Path-based rule scoping.  All matching is on the source path recorded
    in the .cmt (relative to the build root). *)

type t = {
  lib_prefixes : string list;
  parallel_prefixes : string list;
  hashtbl_det_prefixes : string list;
  realtime_prefixes : string list;
  unsafe_allowlist : string list;
}

val default : t
(** The project policy: everything under [lib/] is in scope; Domain.spawn
    and Atomic only in [lib/parallel/]; Hashtbl iteration order matters
    in [lib/sim/], [lib/verify/], [lib/scenarios/] and in the
    shard-merge paths [lib/ccp/], [lib/core/], [lib/metrics/]; wall-clock
    reads are legal only in [lib/live/] (the real-time runtime — its
    transport seam [lib/transport/] stays deterministic); unsafe
    indexing only in the allowlisted files. *)

val normalize_path : string -> string
val in_lib : t -> string -> bool
val in_parallel : t -> string -> bool
val in_hashtbl_det : t -> string -> bool

(** [in_realtime] is the scope where [det/wall-clock] does not apply. *)
val in_realtime : t -> string -> bool
val unsafe_allowed : t -> string -> bool
