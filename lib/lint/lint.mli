(** Driver for the whole pass: discovery, scan, baseline, report. *)

type options = {
  root : string;
  dirs : string list;
  baseline_file : string option;
  json : bool;
  update_baseline : bool;
  output : string option;
  only : string option;
      (** Restrict reporting to rule ids with this prefix (a family like
          ["mt/"], or one full id).  Text and JSON reporters both see the
          filtered summary; fingerprints of other families neither fail
          the run nor show as stale.  [--update-baseline] still writes
          the unfiltered scan. *)
}

val default_options : options

val scan :
  ?cfg:Lint_config.t -> root:string -> dirs:string list -> unit ->
  Engine.scan * string list
(** Discovery + scan without baseline or rendering: the findings and the
    discovery/skip warnings.  test_lint.ml drives the fixtures with
    this. *)

val run : ?cfg:Lint_config.t -> options -> int
(** Returns the process exit status: 0 when clean (possibly with
    warnings about missing artefacts), 1 on fresh error findings. *)
