(** Robust .cmt discovery across source-checkout, in-build and sandboxed
    layouts. *)

type result = {
  cmts : string list;
  load_dirs : string list;
  warnings : string list;
}

val build_root : root:string -> string
(** [<root>/_build/default] when it exists, else [root] itself (the case
    when the caller already runs inside the build tree). *)

val find_cmts : root:string -> dirs:string list -> result
