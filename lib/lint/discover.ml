(* .cmt discovery that behaves identically from a source checkout (where
   the artefacts live under <root>/_build/default), from inside a dune
   action (cwd is already the build root) and in sandboxed layouts.
   Missing directories or unreadable files warn and skip: the lint only
   exits nonzero on genuine findings. *)

type result = {
  cmts : string list;
  load_dirs : string list;  (* every directory that held a .cmt or .cmi *)
  warnings : string list;
}

let build_root ~root =
  let cand = Filename.concat root (Filename.concat "_build" "default") in
  if Sys.file_exists cand && Sys.is_directory cand then cand else root

let has_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.equal (String.sub s (l - ls) ls) suffix

let walk dir ~f =
  let rec go dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then go path else f path)
        entries
  in
  go dir

let find_cmts ~root ~dirs =
  let base = build_root ~root in
  let warnings = ref [] in
  let cmts = ref [] in
  let load_dirs = Hashtbl.create 16 in
  List.iter
    (fun dir ->
      let abs = Filename.concat base dir in
      if not (Sys.file_exists abs && Sys.is_directory abs) then
        warnings :=
          Printf.sprintf "lint: skipping missing directory %s (no build \
                          artefacts under %s?)"
            dir base
          :: !warnings
      else
        walk abs ~f:(fun path ->
            if has_suffix ~suffix:".cmt" path then begin
              cmts := path :: !cmts;
              Hashtbl.replace load_dirs (Filename.dirname path) ()
            end
            else if has_suffix ~suffix:".cmi" path then
              Hashtbl.replace load_dirs (Filename.dirname path) ()))
    dirs;
  if List.compare_length_with !cmts 0 = 0 then
    warnings :=
      Printf.sprintf
        "lint: no .cmt files found under %s for dirs [%s]; run `dune build \
         @check` first"
        base (String.concat "; " dirs)
      :: !warnings;
  let load_dirs =
    Hashtbl.fold (fun d () acc -> d :: acc) load_dirs []
    |> List.sort String.compare
  in
  let stdlib = Config.standard_library in
  let load_dirs =
    if Sys.file_exists stdlib then load_dirs @ [ stdlib ] else load_dirs
  in
  {
    cmts = List.sort String.compare !cmts;
    load_dirs;
    warnings = List.rev !warnings;
  }
