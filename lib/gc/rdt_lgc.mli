(** RDT-LGC — the paper's optimal asynchronous garbage collector
    (Section 4, Algorithms 1-3).

    Each process keeps an array [UC] ("uncollected checkpoints") with one
    entry per process: [UC.(f)] references the checkpoint control block
    (CCB) of the stable checkpoint retained *because of* [p_f] — the most
    recent local checkpoint not causally preceded by the last known stable
    checkpoint of [p_f] (Theorem 2).  CCBs carry a reference count; when no
    entry references a CCB, the checkpoint is obsolete and is eliminated
    from stable storage.

    The collector attaches to a {!Rdt_protocols.Middleware.t} via
    {!hooks}: it reacts to new causal dependencies (Algorithm 2, receive)
    and to checkpoint stores (Algorithm 2, taking a checkpoint), and
    handles rollbacks (Algorithm 3, with the last-interval vector [LI]
    when global information is available, or the process's own DV
    otherwise).

    Guarantees (proved in the paper, checked by this repository's tests):
    - safety: only obsolete checkpoints are eliminated (Theorem 4);
    - the invariant of Equation 4 holds at every step (Theorem 3);
    - at most [n] checkpoints are retained during normal execution
      ([n + 1] transiently while a new checkpoint is being stored);
    - optimality: every checkpoint whose obsolescence follows from causal
      knowledge is eliminated (Theorem 5). *)

type t

val create :
  me:int ->
  store:Rdt_storage.Stable_store.t ->
  dv:Rdt_causality.Dependency_vector.t ->
  n:int ->
  t
(** [create ~me ~store ~dv ~n] initializes the collector state for a
    process that has just stored its initial checkpoint [s^0] (the state
    of [Algorithm 1.initialize()] followed by the checkpoint step for
    [s^0]).  [store] must hold exactly one checkpoint and [dv] is the live
    dependency vector shared with the middleware.
    @raise Invalid_argument if the store does not hold exactly [s^0]. *)

val restore :
  me:int ->
  store:Rdt_storage.Stable_store.t ->
  dv:Rdt_causality.Dependency_vector.t ->
  n:int ->
  t
(** Collector state for a process respawned after a crash: [store] holds
    the checkpoints that survived and [dv] is the middleware's restored
    vector ({!Rdt_protocols.Middleware.restore}).  [UC] starts all-Null —
    the crash destroyed it — and is rebuilt wholesale by {!on_rollback}
    when the recovery session rolls the process back, which must happen
    before any other hook fires.
    @raise Invalid_argument if [store] is empty. *)

val attach : t -> Rdt_protocols.Middleware.t -> unit
(** Install this collector's {!hooks} on the middleware.  The middleware
    must be freshly created (only [s^0] taken). *)

val hooks : t -> Rdt_protocols.Middleware.hooks

val on_new_dependency : t -> int -> unit
(** Algorithm 2, receive: entry [j] of the DV just increased —
    [release(j); link(j, me)]. *)

val on_checkpoint_stored : t -> int -> unit
(** Algorithm 2, checkpoint: [s^index] was stored —
    [release(me); newCCB(me, index)]. *)

val on_rollback : t -> li:int array -> unit
(** Algorithm 3: rebuild [UC] after a rollback of this process.  [li] is
    the last-interval vector when global information is available, or the
    process's own (restored) DV in the decentralized variant.  Eliminates
    every checkpoint left unreferenced. *)

val release_outdated : t -> li:int array -> unit
(** Recovery-session step for a process that did *not* roll back: release
    every entry [UC.(f)] with [DV.(f) < li.(f)] (the last stable
    checkpoint of [p_f] does not precede the local volatile state, so
    nothing needs to be retained because of [p_f]). *)

val set_test_overcollect : t -> bool -> unit
(** Test hook for the differential fuzzer's self-check
    ({!Rdt_verify.Fuzz}): when enabled, {!on_checkpoint_stored}
    additionally releases every non-local [UC] entry, so the collector
    over-collects — checkpoints other processes may still need are
    eliminated, violating Theorem 4.  The fuzzer must detect this within a
    few seeds and shrink the violation to a handful of events.  Never
    enable outside tests. *)

val uc_view : t -> int option array
(** Current [UC] contents as checkpoint indices ([None] = Null reference);
    the representation the paper's Figure 4 prints. *)

val retained_because_of : t -> int -> int option
(** [retained_because_of t f]: index of the checkpoint retained because of
    process [f], if any. *)

val pp : Format.formatter -> t -> unit
