(** Global-knowledge garbage-collection computations over dependency
    vectors — the building blocks of the coordinated baselines the paper
    contrasts RDT-LGC with (Wang et al. [21]; Bhargava & Lian / the survey
    [5, 8]).

    These functions are pure: the runner gathers each process's snapshot
    (retained checkpoints with their stored DVs, live DV, last index) over
    simulated control messages, calls into here at the coordinator, and
    disseminates the results.  Correctness relies on Equation 2
    ([c^alpha_a -> c^beta_b <=> alpha < DV(c^beta_b)[a]]), hence on RDT.

    Staleness safety: obsolescence is stable (an obsolete checkpoint stays
    obsolete), so evaluating Theorem 1 on an old consistent snapshot can
    only under-collect, never over-collect.  Using a *lower bound* on
    another process's last index is exactly the same situation. *)

type snapshot = {
  entries : Rdt_storage.Stable_store.entry array;
      (** retained stable checkpoints, ascending index order *)
  live_dv : int array;  (** DV of the volatile state at snapshot time *)
}
(** One process's reply to the coordinator's query. *)

val last_interval_vector : snapshot array -> int array
(** [LI]: entry [f] is [last_s(f) + 1] as of the snapshots. *)

val retained_for :
  entries:Rdt_storage.Stable_store.entry array ->
  live_dv:int array ->
  f:int ->
  li_f:int ->
  int option
(** The checkpoint one process retains *because of* [p_f], knowing that
    [p_f]'s last interval is at least [li_f] (Algorithm 3 line 9,
    generalized to stale knowledge — see {!Rdt_lgc}): the most recent
    entry whose successor's DV reaches [li_f] in component [f] while its
    own does not.  [entries] must be in ascending index order; [live_dv]
    stands in for the successor of the last entry. *)

val theorem1_retained : snapshot array -> me:int -> li:int array -> int list
(** Indices process [me] must retain according to Theorem 1 evaluated with
    the last-interval vector [li]: for each [f] with [li.(f) >= 1], the
    most recent stable checkpoint whose successor's DV reaches [li.(f)] in
    entry [f] while its own does not; plus always the last stable
    checkpoint. *)

val theorem1_retained_count : snapshot array -> me:int -> li:int array -> int
(** [List.length (theorem1_retained ...)] without materializing the list —
    the runner's per-sample "optimal" instrumentation. *)

val theorem1_collectable : snapshot array -> me:int -> li:int array -> int list
(** Complement of {!theorem1_retained} within the retained set — what the
    Wang-style coordinated collector tells [me] to eliminate. *)

val theorem2_retained :
  entries:Rdt_storage.Stable_store.entry array ->
  live_dv:int array ->
  int list
(** Corollary 1 evaluated from one process's own state alone (Theorem 2:
    [li] is the process's own dependency vector): the retained set an
    optimal asynchronous collector must hold at this instant.  RDT-LGC
    maintains exactly this set incrementally; this closed form recomputes
    it from scratch — used by the lazy-collection ablation and by the
    optimality audits. *)

val theorem2_collectable :
  entries:Rdt_storage.Stable_store.entry array ->
  live_dv:int array ->
  int list
(** Complement of {!theorem2_retained} within [entries]. *)

val total_recovery_line : snapshot array -> int array
(** The recovery line for the failure of *all* processes, [R_Pi]: the
    greatest consistent global checkpoint over stable checkpoints,
    computed from stored DVs by rollback propagation (the simple-baseline
    [5, 8] collects everything strictly below it). *)

val below_total_line : snapshot array -> me:int -> int list
(** Checkpoint indices of [me] strictly below its [R_Pi] component — what
    the simple baseline eliminates. *)
