module Stable_store = Rdt_storage.Stable_store

type snapshot = { entries : Stable_store.entry array; live_dv : int array }

let last_index snap =
  let len = Array.length snap.entries in
  if len = 0 then invalid_arg "Global_gc: a process retains no checkpoint";
  snap.entries.(len - 1).Stable_store.index

let last_interval_vector snaps = Array.map (fun s -> last_index s + 1) snaps

(* Shared with Rdt_lgc's Algorithm 3: the checkpoint retained because of
   p_f given knowledge li_f (see Rdt_lgc for the derivation).  The DV
   entry for f is monotone over a process's own checkpoints, so the
   paper's O(log m) binary search applies (Section 4.5: Algorithm 3 runs
   in O(n log n) when O(n) checkpoints are stored). *)
let retained_for ~entries ~live_dv ~f ~li_f =
  if li_f <= 0 then None
  else begin
    let len = Array.length entries in
    let dv_at pos =
      let entry : Stable_store.entry = entries.(pos) in
      entry.dv
    in
    if len = 0 || (dv_at 0).(f) >= li_f then None
    else begin
      (* invariant: (dv_at lo).(f) < li_f <= (dv_at hi).(f); find the
         largest position below li_f *)
      let rec bsearch lo hi =
        if hi - lo <= 1 then lo
        else begin
          let mid = (lo + hi) / 2 in
          if (dv_at mid).(f) < li_f then bsearch mid hi else bsearch lo mid
        end
      in
      let pos =
        if (dv_at (len - 1)).(f) < li_f then len - 1 else bsearch 0 (len - 1)
      in
      let successor_dv = if pos + 1 < len then dv_at (pos + 1) else live_dv in
      if successor_dv.(f) >= li_f then Some entries.(pos).Stable_store.index
      else None
    end
  end

module Int_set = Set.Make (Int)

let theorem1_keep_set snaps ~me ~li =
  let snap = snaps.(me) in
  let keep = ref (Int_set.singleton (last_index snap)) in
  for f = 0 to Array.length snaps - 1 do
    match
      retained_for ~entries:snap.entries ~live_dv:snap.live_dv ~f
        ~li_f:li.(f)
    with
    | Some index -> keep := Int_set.add index !keep
    | None -> ()
  done;
  !keep

let theorem1_retained snaps ~me ~li =
  Int_set.elements (theorem1_keep_set snaps ~me ~li)

let theorem1_retained_count snaps ~me ~li =
  Int_set.cardinal (theorem1_keep_set snaps ~me ~li)

let theorem1_collectable snaps ~me ~li =
  let keep = Int_set.of_list (theorem1_retained snaps ~me ~li) in
  Array.to_list snaps.(me).entries
  |> List.filter_map (fun (e : Stable_store.entry) ->
         if Int_set.mem e.index keep then None else Some e.index)

let theorem2_retained ~entries ~live_dv =
  let len = Array.length entries in
  if len = 0 then invalid_arg "Global_gc.theorem2_retained: no checkpoints";
  let last = entries.(len - 1).Stable_store.index in
  let keep = ref (Int_set.singleton last) in
  for f = 0 to Array.length live_dv - 1 do
    match retained_for ~entries ~live_dv ~f ~li_f:live_dv.(f) with
    | Some index -> keep := Int_set.add index !keep
    | None -> ()
  done;
  Int_set.elements !keep

let theorem2_collectable ~entries ~live_dv =
  let keep = Int_set.of_list (theorem2_retained ~entries ~live_dv) in
  Array.to_list entries
  |> List.filter_map (fun (e : Stable_store.entry) ->
         if Int_set.mem e.index keep then None else Some e.index)

(* R_Pi by rollback propagation over stored DVs: start from each process's
   last stable checkpoint and, whenever member a precedes member b
   (Equation 2: index_a < DV(member_b).(a)), move b one retained
   checkpoint down. *)
let total_recovery_line snaps =
  let n = Array.length snaps in
  let pos = Array.map (fun s -> Array.length s.entries - 1) snaps in
  let index_of p = snaps.(p).entries.(pos.(p)).Stable_store.index in
  let dv_of p = snaps.(p).entries.(pos.(p)).Stable_store.dv in
  let changed = ref true in
  while !changed do
    changed := false;
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if a <> b && index_of a < (dv_of b).(a) then begin
          pos.(b) <- pos.(b) - 1;
          if pos.(b) < 0 then
            invalid_arg
              "Global_gc.total_recovery_line: rollback propagation fell \
               through the retained set (collector mixing?)";
          changed := true
        end
      done
    done
  done;
  Array.init n index_of

let below_total_line snaps ~me =
  let line = total_recovery_line snaps in
  Array.to_list snaps.(me).entries
  |> List.filter_map (fun (e : Stable_store.entry) ->
         if e.index < line.(me) then Some e.index else None)
