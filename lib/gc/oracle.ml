module Ccp = Rdt_ccp.Ccp
module Vector_clock = Rdt_causality.Vector_clock

let witnesses ccp (c : Ccp.ckpt) =
  if not (Ccp.is_stable ccp c) then
    invalid_arg "Oracle: Theorem 1 characterizes stable checkpoints";
  let successor : Ccp.ckpt = { pid = c.pid; index = c.index + 1 } in
  let witness f =
    let last_f = Ccp.last_stable_ckpt ccp f in
    Ccp.precedes ccp last_f successor && not (Ccp.precedes ccp last_f c)
  in
  List.filter witness (List.init (Ccp.n ccp) Fun.id)

let needed_by = witnesses

(* DV-style fast path for the Theorem-1 sweeps: [precedes last_f x] only
   reads the [f] entry of two clocks (Equation 2 shape), and [last_f] is
   shared by every query of a sweep — so preload [VC(s^last_f).(f)] for
   all [f] once and answer each witness test with two integer compares.
   The [last_f = x] equality guards reproduce [Ccp.precedes]'s
   irreflexivity exactly. *)
let last_entries ccp =
  Array.init (Ccp.n ccp) (fun f ->
      Ccp.vc_entry ccp (Ccp.last_stable_ckpt ccp f) f)

let has_witness ccp ~last_entry (c : Ccp.ckpt) =
  let n = Ccp.n ccp in
  let p = c.pid in
  let lp = Ccp.last_stable ccp p in
  let vc_c = Ccp.vc ccp c in
  let vc_s = Ccp.vc ccp { pid = p; index = c.index + 1 } in
  let rec loop f =
    if f >= n then false
    else begin
      let precedes_successor =
        (not (f = p && lp = c.index + 1))
        && last_entry.(f) <= Vector_clock.get vc_s f
      in
      let precedes_c =
        (not (f = p && lp = c.index))
        && last_entry.(f) <= Vector_clock.get vc_c f
      in
      (precedes_successor && not precedes_c) || loop (f + 1)
    end
  in
  loop 0

let is_obsolete ccp c =
  if not (Ccp.is_stable ccp c) then
    invalid_arg "Oracle: Theorem 1 characterizes stable checkpoints";
  not (has_witness ccp ~last_entry:(last_entries ccp) c)

let obsolete ccp =
  let last_entry = last_entries ccp in
  List.filter
    (fun c -> not (has_witness ccp ~last_entry c))
    (Ccp.stable_checkpoints ccp)

let retained ccp ~pid =
  let last_entry = last_entries ccp in
  List.filter_map
    (fun index ->
      if has_witness ccp ~last_entry { Ccp.pid; index } then Some index
      else None)
    (List.init (Ccp.last_stable ccp pid + 1) Fun.id)

let retained_count ccp ~pid = List.length (retained ccp ~pid)
