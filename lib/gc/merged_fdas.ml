module Stable_store = Rdt_storage.Stable_store
module Control = Rdt_protocols.Control

type ccb = { ind : int; mutable rc : int }

type t = {
  n : int;
  me : int;
  dv : int array;
  uc : ccb option array;
  store : Stable_store.t;
  mutable sent : bool;
  mutable basic_count : int;
  mutable forced_count : int;
}

(* Algorithm 1 procedures *)

let release t j =
  match t.uc.(j) with
  | None -> ()
  | Some ccb ->
    ccb.rc <- ccb.rc - 1;
    if ccb.rc = 0 then Stable_store.eliminate t.store ~index:ccb.ind;
    t.uc.(j) <- None

let link t j =
  match t.uc.(t.me) with
  | None -> assert false
  | Some ccb ->
    ccb.rc <- ccb.rc + 1;
    t.uc.(j) <- Some ccb

let new_ccb t ~index = t.uc.(t.me) <- Some { ind = index; rc = 1 }

(* "On taking checkpoint (basic or forced)" *)
let take_checkpoint t ~now =
  t.sent <- false;
  let index = t.dv.(t.me) in
  Stable_store.store t.store ~index ~dv:t.dv ~now ~size_bytes:1 ();
  release t t.me;
  new_ccb t ~index;
  t.dv.(t.me) <- t.dv.(t.me) + 1

let create ~n ~me =
  let t =
    {
      n;
      me;
      dv = Array.make n 0;
      uc = Array.make n None;
      store = Stable_store.create ~me;
      sent = false;
      basic_count = 0;
      forced_count = 0;
    }
  in
  take_checkpoint t ~now:0.0;
  t

let me t = t.me
let n t = t.n
let dv t = Array.copy t.dv
let dv_view t = t.dv
let uc_view t = Array.map (Option.map (fun ccb -> ccb.ind)) t.uc
let store t = t.store

let basic_checkpoint t ~now =
  take_checkpoint t ~now;
  t.basic_count <- t.basic_count + 1

let before_send t =
  t.sent <- true;
  Control.make ~dv:t.dv ~index:0

let receive t (m : Control.t) ~now =
  (* FDAS freezes the dependency vector once a send occurred in the
     interval; the first entry the message would change triggers the
     forced checkpoint, stored before any update.  The arity check up
     front licenses the unchecked accesses in the per-entry loop — this
     is the per-message O(n) scan the paper's overhead argument is about,
     and it must not allocate. *)
  if Array.length m.Control.dv <> t.n then
    invalid_arg "Merged_fdas.receive: control arity mismatch";
  let forced = ref t.sent in
  for j = 0 to t.n - 1 do
    let mj = Array.unsafe_get m.Control.dv j in
    if mj > Array.unsafe_get t.dv j then begin
      if !forced then begin
        take_checkpoint t ~now;
        t.forced_count <- t.forced_count + 1;
        forced := false
      end;
      release t j;
      link t j;
      Array.unsafe_set t.dv j mj
    end
  done
[@@lint.bounds_checked]

let forced_count t = t.forced_count
let basic_count t = t.basic_count
