(** Literal implementation of the paper's Algorithm 4: FDAS with RDT-LGC
    merged into a single state machine.

    The rest of this library composes a generic middleware with a pluggable
    protocol and collector; this module instead transcribes Algorithm 4
    line by line — one [sent] flag, the dependency vector, the UC/CCB
    structures and the stable store, all in one record — the way a
    production checkpointing layer would ship it.  The paper's Section 4.5
    argues the merge adds no asymptotic cost; the test suite checks
    behavioural equivalence with the composed stack
    ([Middleware] + {!Rdt_lgc}) on arbitrary operation sequences, and the
    micro-benchmarks compare their constants. *)

type t

val create : n:int -> me:int -> t
(** Initialization: [sent <- false; initialize()], then the initial
    checkpoint [s^0] is stored. *)

val me : t -> int
val n : t -> int

val dv : t -> int array
(** Copy of the current dependency vector. *)

val dv_view : t -> int array
(** Borrowed read-only view of the live vector (no copy) — for callers
    that inspect it and do not retain it across further events; see
    DESIGN.md §10 for the ownership rules. *)

val uc_view : t -> int option array
(** Current UC contents as checkpoint indices ([None] = Null). *)

val store : t -> Rdt_storage.Stable_store.t

val basic_checkpoint : t -> now:float -> unit
(** The "on taking checkpoint" block for a basic checkpoint. *)

val before_send : t -> Rdt_protocols.Control.t
(** "Before sending m": sets [sent] and returns the control information to
    piggyback. *)

val receive : t -> Rdt_protocols.Control.t -> now:float -> unit
(** "On receiving m": takes the forced checkpoint if the message brings
    new causal information while [sent] holds, then updates DV and the
    UC references entry by entry (Algorithm 4's loop). *)

val forced_count : t -> int
val basic_count : t -> int
