module Dependency_vector = Rdt_causality.Dependency_vector
module Stable_store = Rdt_storage.Stable_store
module Middleware = Rdt_protocols.Middleware

(* Checkpoint control block (paper, Algorithm 1): index of the stable
   checkpoint it represents and the number of UC entries referencing it. *)
type ccb = { ind : int; mutable rc : int }

type t = {
  n : int;
  me : int;
  store : Stable_store.t;
  dv : Dependency_vector.t;
  uc : ccb option array;
  mutable test_overcollect : bool;
}

let release t j =
  match t.uc.(j) with
  | None -> ()
  | Some ccb ->
    ccb.rc <- ccb.rc - 1;
    if ccb.rc = 0 then Stable_store.eliminate t.store ~index:ccb.ind;
    t.uc.(j) <- None

let link t j =
  (* UC.(j) <- UC.(me); UC.(j).rc++ — UC.(me) always references the last
     stable checkpoint, so it is never Null. *)
  match t.uc.(t.me) with
  | None -> assert false
  | Some ccb ->
    ccb.rc <- ccb.rc + 1;
    t.uc.(j) <- Some ccb

let new_ccb t ~index = t.uc.(t.me) <- Some { ind = index; rc = 1 }

let create ~me ~store ~dv ~n =
  if Stable_store.count store <> 1 || not (Stable_store.mem store ~index:0)
  then
    invalid_arg "Rdt_lgc.create: attach to a fresh middleware holding only s^0";
  let t = { n; me; store; dv; uc = Array.make n None; test_overcollect = false } in
  (* state after initialize() plus the checkpoint step for s^0 *)
  new_ccb t ~index:0;
  t

let restore ~me ~store ~dv ~n =
  if Stable_store.count store = 0 then
    invalid_arg "Rdt_lgc.restore: restored store is empty";
  (* a crash destroyed UC; Algorithm 3's rollback step rebuilds every slot
     from retained checkpoints + the restored DV + LI, so a respawned
     collector starts all-Null and must see a rollback before any other
     hook fires (the recovery session guarantees it: the faulty process
     always rolls back) *)
  { n; me; store; dv; uc = Array.make n None; test_overcollect = false }

let on_new_dependency t j =
  release t j;
  link t j

let on_checkpoint_stored t index =
  release t t.me;
  new_ccb t ~index;
  if t.test_overcollect then
    (* deliberately wrong: also drop every cross-process retention duty,
       eliminating checkpoints other processes may still need *)
    for f = 0 to t.n - 1 do
      if f <> t.me then release t f
    done

let set_test_overcollect t flag = t.test_overcollect <- flag

let on_rollback t ~li =
  if Array.length li <> t.n then invalid_arg "Rdt_lgc.on_rollback: arity";
  let entries = Array.of_list (Stable_store.retained t.store) in
  (* Algorithm 3 line 7: fresh CCBs for every stored checkpoint *)
  let ccbs =
    Array.map (fun (e : Stable_store.entry) -> { ind = e.index; rc = 0 }) entries
  in
  let ccb_of_index index =
    let found = ref None in
    Array.iter (fun c -> if c.ind = index then found := Some c) ccbs;
    match !found with Some c -> c | None -> assert false
  in
  (* borrowed: [retained_for] only reads the live vector during the call *)
  let live_dv = Dependency_vector.view t.dv in
  for f = 0 to t.n - 1 do
    (* Algorithm 3 line 9 *)
    match Global_gc.retained_for ~entries ~live_dv ~f ~li_f:li.(f) with
    | Some index ->
      let ccb = ccb_of_index index in
      ccb.rc <- ccb.rc + 1;
      t.uc.(f) <- Some ccb
    | None -> t.uc.(f) <- None
  done;
  (* lines 15-17: eliminate every checkpoint left unreferenced *)
  Array.iter
    (fun ccb ->
      if ccb.rc = 0 then Stable_store.eliminate t.store ~index:ccb.ind)
    ccbs

let release_outdated t ~li =
  if Array.length li <> t.n then
    invalid_arg "Rdt_lgc.release_outdated: arity";
  for f = 0 to t.n - 1 do
    if f <> t.me && Dependency_vector.get t.dv f < li.(f) then release t f
  done

let hooks t =
  {
    Middleware.on_new_dependency = on_new_dependency t;
    on_checkpoint_stored = on_checkpoint_stored t;
    on_rollback = (fun ~li -> on_rollback t ~li);
  }

let attach t mw = Middleware.set_hooks mw (hooks t)

let uc_view t = Array.map (Option.map (fun ccb -> ccb.ind)) t.uc

let retained_because_of t f = Option.map (fun ccb -> ccb.ind) t.uc.(f)

let pp ppf t =
  let entry ppf = function
    | None -> Format.pp_print_string ppf "*"
    | Some ccb -> Format.fprintf ppf "%d" ccb.ind
  in
  Format.fprintf ppf "UC=(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       entry)
    (Array.to_list t.uc)
