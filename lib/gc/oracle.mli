(** Omniscient obsolescence oracle — Theorem 1 evaluated on the ground
    truth CCP.

    A stable checkpoint [s^gamma_i] is obsolete iff there is no process
    [p_f] with [s^last_f -> c^(gamma+1)_i] and [s^last_f -/-> s^gamma_i].
    This module evaluates that characterization using trace-derived vector
    clocks (no dependency vectors), which makes it:

    - the reference against which RDT-LGC's safety and optimality are
      property-tested, and
    - the idealized "instant global knowledge" upper baseline of the
      storage experiments (no real collector can beat it).

    Only meaningful on RD-trackable CCPs (Theorem 1's proof uses RDT).

    The sweeps ({!obsolete}, {!retained}) answer each witness query from
    [n] preloaded [VC(s^last_f).(f)] entries (the Equation-2 fast path for
    {!Rdt_ccp.Ccp.precedes}): two integer compares per (checkpoint,
    process) pair, no clock allocation — cheap enough to run at every
    sample point of an oracle-instrumented simulation. *)

val obsolete : Rdt_ccp.Ccp.t -> Rdt_ccp.Ccp.ckpt list
(** All obsolete stable checkpoints of the CCP. *)

val is_obsolete : Rdt_ccp.Ccp.t -> Rdt_ccp.Ccp.ckpt -> bool
(** Theorem 1 for one stable checkpoint.
    @raise Invalid_argument if the checkpoint is volatile or absent. *)

val retained : Rdt_ccp.Ccp.t -> pid:int -> int list
(** Indices of the non-obsolete stable checkpoints of one process —
    what an omniscient collector would keep. *)

val retained_count : Rdt_ccp.Ccp.t -> pid:int -> int

val needed_by : Rdt_ccp.Ccp.t -> Rdt_ccp.Ccp.ckpt -> int list
(** The processes [p_f] witnessing non-obsolescence (empty iff obsolete);
    diagnostic for tests and the CLI. *)
