.PHONY: all build test lint tsan-smoke bench figures eval micro smoke bench-json perf perf-smoke mt-gate fuzz-smoke live-smoke live-nemesis-smoke live-fuzz-nightly examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# typed-AST project invariants (lib/lint, DESIGN.md §12); fails on any
# fresh finding not covered by lint_baseline.txt
lint:
	dune build @lint

# ThreadSanitizer smoke (DESIGN.md §16): the dynamic complement of the
# static mt/* lint family.  Runs the shard-invariance suite, a sharded
# fixed-seed fuzz slice and the 3-node sim-cluster scenario with real
# domains under tsan.  Requires an OCaml switch configured with
# ThreadSanitizer (`ocamlopt -config` reports `tsan: true`; available
# from 5.2 via ocaml-option-tsan); on any other switch the target
# prints SKIP and exits 0 so plain dev machines and CI stay green.
tsan-smoke:
	@if ocamlopt -config 2>/dev/null | grep -q '^tsan: true'; then \
	  echo "tsan-smoke: tsan-enabled switch detected"; \
	  dune build @all && \
	  dune exec test/test_main.exe -- test shards && \
	  dune exec bin/rdtgc_cli.exe -- fuzz --seed 2026 --runs 50 --max-procs 6 --shards 4 -q && \
	  dune exec bin/rdtgc_cli.exe -- cluster-run test/corpus/live_smoke.scn --backend sim -q; \
	else \
	  echo "tsan-smoke: SKIP -- active switch lacks ThreadSanitizer (ocamlopt -config has no 'tsan: true')"; \
	  echo "tsan-smoke: create one with: opam switch create 5.2.0+tsan ocaml-variants.5.2.0+options ocaml-option-tsan"; \
	fi

# parallelism for the experiment harness: JOBS=0 uses every core
JOBS ?= 1

# full experiment harness (figures + evaluation + micro-benchmarks)
bench:
	dune exec bench/main.exe -- all -j $(JOBS)

figures:
	dune exec bench/main.exe -- figures -j $(JOBS)

eval:
	dune exec bench/main.exe -- eval -j $(JOBS)

micro:
	dune exec bench/main.exe -- micro

smoke:
	dune exec bench/main.exe -- smoke

# machine-readable micro-benchmark results (writes BENCH_micro.json)
bench-json: micro

# perf regression check: save the committed BENCH_micro.json as baseline,
# re-run the micro benchmarks (overwrites BENCH_micro.json), and print a
# non-fatal WARN line for every >20% ns/run regression or steady-state
# allocation growth.  Measurement noise never fails the target, but a
# schema-version or benchmark-group-set mismatch vs the committed
# baseline does (exit 1): regenerate and commit BENCH_micro.json in the
# same change.
perf:
	@mkdir -p _build
	@git show HEAD:BENCH_micro.json > _build/BENCH_micro.baseline.json \
	  2>/dev/null || cp BENCH_micro.json _build/BENCH_micro.baseline.json
	dune exec bench/main.exe -- micro
	dune exec bench/main.exe -- perf-diff _build/BENCH_micro.baseline.json BENCH_micro.json

# fast perf regression check: the incremental-CCP criterion only
perf-smoke: smoke

# CI multicore gate: min-of-7 wall-clock race of the whole-run scaling
# workload at shards=1 vs shards=4; exits 1 if sharding lost (DESIGN.md §13)
mt-gate:
	dune exec bench/main.exe -- mt-gate

# ~10 s differential-fuzz budget: a fixed-seed campaign plus the
# over-collecting-mutant self-check (DESIGN.md §11); the nightly CI job
# runs the same campaign with a fresh seed and a much larger budget
fuzz-smoke:
	dune exec bin/rdtgc_cli.exe -- fuzz --seed 2026 --runs 500 --max-procs 6 -q
	dune exec bin/rdtgc_cli.exe -- fuzz --mutate-lgc --seed 7 --runs 10 -q

# live-process runtime smoke (DESIGN.md §14): the committed scenario on a
# real 3-process localhost TCP cluster — SIGKILL + durable recovery at
# each crash op — black-box checked against the simulator replay
live-smoke:
	dune exec bin/rdtgc_cli.exe -- cluster-run test/corpus/live_smoke.scn --backend exec -q

# ~10 s nemesis smoke (DESIGN.md §15): every live-representable corpus
# scenario replays clean under its committed fault schedule on the
# simulator backend, then the partition reproducer runs once against a
# real TCP cluster with the nemesis dropping frames on the wire
live-nemesis-smoke:
	dune exec bin/rdtgc_cli.exe -- live-fuzz --runs 0 --backend sim --corpus test/corpus -q
	dune exec bin/rdtgc_cli.exe -- cluster-run test/corpus/live_nemesis_partition.scn \
	  --backend exec --nemesis "$$(cat test/corpus/live_nemesis_partition.nms)" -q

# the nightly live campaign, runnable locally: 50 seeded random scenarios
# under random fault schedules against real TCP processes, corpus
# replayed first, failures shrunk and saved under live-fuzz-corpus/
live-fuzz-nightly:
	dune exec bin/rdtgc_cli.exe -- live-fuzz --runs 50 --backend exec \
	  --seed $${SEED:-42} --corpus live-fuzz-corpus
	dune exec bin/rdtgc_cli.exe -- live-fuzz --runs 3 --backend sim --mutate-deliver \
	  --seed $${SEED:-42} -q

examples:
	dune exec examples/quickstart.exe
	dune exec examples/domino_effect.exe
	dune exec examples/paper_trace.exe
	dune exec examples/recovery_demo.exe
	dune exec examples/storage_budget.exe
	dune exec examples/causal_breakpoint.exe

clean:
	dune clean
