.PHONY: all build test bench figures eval micro examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# full experiment harness (figures + evaluation + micro-benchmarks)
bench:
	dune exec bench/main.exe

figures:
	dune exec bench/main.exe -- figures

eval:
	dune exec bench/main.exe -- eval

micro:
	dune exec bench/main.exe -- micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/domino_effect.exe
	dune exec examples/paper_trace.exe
	dune exec examples/recovery_demo.exe
	dune exec examples/storage_budget.exe
	dune exec examples/causal_breakpoint.exe

clean:
	dune clean
