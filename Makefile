.PHONY: all build test bench figures eval micro smoke bench-json perf-smoke examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# parallelism for the experiment harness: JOBS=0 uses every core
JOBS ?= 1

# full experiment harness (figures + evaluation + micro-benchmarks)
bench:
	dune exec bench/main.exe -- all -j $(JOBS)

figures:
	dune exec bench/main.exe -- figures -j $(JOBS)

eval:
	dune exec bench/main.exe -- eval -j $(JOBS)

micro:
	dune exec bench/main.exe -- micro

smoke:
	dune exec bench/main.exe -- smoke

# machine-readable micro-benchmark results (writes BENCH_micro.json)
bench-json: micro

# fast perf regression check: the incremental-CCP criterion only
perf-smoke: smoke

examples:
	dune exec examples/quickstart.exe
	dune exec examples/domino_effect.exe
	dune exec examples/paper_trace.exe
	dune exec examples/recovery_demo.exe
	dune exec examples/storage_budget.exe
	dune exec examples/causal_breakpoint.exe

clean:
	dune clean
