module Engine = Rdt_sim.Engine
module Network = Rdt_sim.Network
let () =
  let e = Engine.create ~n:4 ~seed:5 ~net:Network.default ~shards:4 () in
  for p = 0 to 3 do
    Engine.set_receiver e p (fun ~src:_ msg ->
        if msg < 5 then Engine.send e ~src:p ~dst:((p + 1) mod 4) (msg + 1))
  done;
  Engine.send e ~src:0 ~dst:3 0;
  (try
     while Engine.step e do () done;
     print_endline "step loop ok"
   with Invalid_argument m -> Printf.printf "RAISED: %s\n" m)
