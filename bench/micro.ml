(* EXP-E4: micro-benchmarks (Bechamel) for the paper's complexity claims
   (Section 4.5):

   - the merged FDAS + RDT-LGC receive handler stays O(n), with a small
     constant over plain FDAS (one Bechamel test per n and variant);
   - the checkpoint event is O(1) beyond the store write;
   - Algorithm 3 (rollback) is cheap even with n retained checkpoints;
   - the analysis substrate (recovery line, Theorem 1, zigzag BFS) scales.

   Every test is steady-state: the driven state returns to an equivalent
   configuration after each call, so Bechamel's linear regression over run
   counts is meaningful. *)

open Bechamel
module Middleware = Rdt_protocols.Middleware
module Protocol = Rdt_protocols.Protocol
module Control = Rdt_protocols.Control
module Rdt_lgc = Rdt_gc.Rdt_lgc
module Global_gc = Rdt_gc.Global_gc
module Trace = Rdt_ccp.Trace
module Figures = Rdt_scenarios.Figures
module Script = Rdt_scenarios.Script
module Session = Rdt_recovery.Session
module Table = Rdt_metrics.Table

(* A middleware whose trace is muted, optionally with RDT-LGC attached,
   plus a message generator that always carries one fresh dependency from
   a fixed peer (the new-causal-info path of Algorithm 2). *)
let receive_setup ~n ~with_lgc =
  let trace = Trace.create ~n in
  let mw = Middleware.create ~n ~me:0 ~protocol:Protocol.fdas ~trace () in
  if with_lgc then begin
    let lgc =
      Rdt_lgc.create ~me:0 ~store:(Middleware.store mw)
        ~dv:(Middleware.dv mw) ~n
    in
    Rdt_lgc.attach lgc mw
  end;
  Trace.set_recording trace false;
  let peer_interval = ref 0 in
  let dv = Array.make n 0 in
  fun () ->
    incr peer_interval;
    dv.(1) <- !peer_interval;
    let msg =
      { Middleware.msg_id = !peer_interval; src = 1; control = Control.make ~dv ~index:0 }
    in
    Middleware.receive mw msg ~now:0.0

let receive_tests =
  List.concat_map
    (fun n ->
      [
        Test.make
          ~name:(Printf.sprintf "receive/fdas/n=%d" n)
          (Staged.stage (receive_setup ~n ~with_lgc:false));
        Test.make
          ~name:(Printf.sprintf "receive/fdas+lgc/n=%d" n)
          (Staged.stage (receive_setup ~n ~with_lgc:true));
      ])
    [ 8; 64; 256 ]

(* Checkpoint event with merged collection: the collector keeps the store
   bounded, so the loop is steady-state. *)
let checkpoint_setup ~n =
  let trace = Trace.create ~n in
  let mw = Middleware.create ~n ~me:0 ~protocol:Protocol.fdas ~trace () in
  let lgc =
    Rdt_lgc.create ~me:0 ~store:(Middleware.store mw) ~dv:(Middleware.dv mw) ~n
  in
  Rdt_lgc.attach lgc mw;
  Trace.set_recording trace false;
  fun () -> Middleware.basic_checkpoint mw ~now:0.0

let checkpoint_tests =
  List.map
    (fun n ->
      Test.make
        ~name:(Printf.sprintf "checkpoint+collect/n=%d" n)
        (Staged.stage (checkpoint_setup ~n)))
    [ 8; 64; 256 ]

(* Algorithm 3 on the worst-case state: every process retains n
   checkpoints and the rebuild pins them all again (no elimination), so
   repeated calls are equivalent. *)
let rollback_setup ~n =
  let s = Figures.worst_case ~n in
  let lgc =
    match Script.collector s 0 with Some l -> l | None -> assert false
  in
  let li = Script.dv s 0 in
  fun () -> Rdt_lgc.on_rollback lgc ~li

let rollback_tests =
  List.map
    (fun n ->
      Test.make
        ~name:(Printf.sprintf "algorithm3-rollback/n=%d" n)
        (Staged.stage (rollback_setup ~n)))
    [ 8; 32; 64 ]

(* Ablation: the incremental UC/CCB update on a new dependency vs
   recomputing the Theorem-2 retained set from scratch (what a collector
   without the paper's bookkeeping would do on every event). *)
let incremental_update_setup ~n =
  let s = Figures.worst_case ~n in
  let lgc =
    match Script.collector s 0 with Some l -> l | None -> assert false
  in
  fun () -> Rdt_lgc.on_new_dependency lgc 1

let recompute_setup ~n =
  let s = Figures.worst_case ~n in
  let store = Script.store s 0 in
  let live_dv = Script.dv s 0 in
  fun () ->
    let entries = Array.of_list (Rdt_storage.Stable_store.retained store) in
    ignore (Global_gc.theorem2_collectable ~entries ~live_dv)

let ablation_tests =
  List.concat_map
    (fun n ->
      [
        Test.make
          ~name:(Printf.sprintf "per-event/incremental-ccb/n=%d" n)
          (Staged.stage (incremental_update_setup ~n));
        Test.make
          ~name:(Printf.sprintf "per-event/theorem2-recompute/n=%d" n)
          (Staged.stage (recompute_setup ~n));
      ])
    [ 8; 32; 64 ]

(* Pure analysis functions on the worst-case state. *)
let snapshots_of s =
  Array.init (Script.n s) (fun pid ->
      Session.snapshot_of (Script.middleware s pid))

let recovery_line_tests =
  List.map
    (fun n ->
      let s = Figures.worst_case ~n in
      let snaps = snapshots_of s in
      Test.make
        ~name:(Printf.sprintf "recovery-line/n=%d" n)
        (Staged.stage (fun () ->
             ignore
               (Rdt_recovery.Recovery_line.from_snapshots snaps ~faulty:[ 0 ]))))
    [ 8; 32; 64 ]

let theorem1_tests =
  List.map
    (fun n ->
      let s = Figures.worst_case ~n in
      let snaps = snapshots_of s in
      let li = Global_gc.last_interval_vector snaps in
      Test.make
        ~name:(Printf.sprintf "theorem1-retained/n=%d" n)
        (Staged.stage (fun () ->
             ignore (Global_gc.theorem1_retained snaps ~me:0 ~li))))
    [ 8; 32; 64 ]

let zigzag_tests =
  List.map
    (fun n ->
      let s = Figures.worst_case ~n in
      let ccp = Script.ccp s in
      Test.make
        ~name:(Printf.sprintf "zigzag-reach/n=%d" n)
        (Staged.stage (fun () ->
             ignore (Rdt_ccp.Zigzag.reach ccp ~src:{ Rdt_ccp.Ccp.pid = 0; index = 0 }))))
    [ 4; 8; 16 ]

(* Incremental CCP engine vs from-scratch rebuild.  A 10k-event trace is
   the harness's sampling scenario: the oracle-instrumented runner
   queries the ground-truth CCP at every sample point, so the cost that
   matters is appending the events since the last query and asking
   again, not replaying the whole history. *)
let big_trace_events = 10_000

let build_big_trace () =
  let n = 8 in
  let trace = Trace.init_with_initial_checkpoints ~n in
  let count = ref n in
  let i = ref 0 in
  while !count < big_trace_events do
    let src = !i mod n in
    let dst = (src + 1 + (!i / n mod (n - 1))) mod n in
    Rdt_ccp.Trace.message trace ~src ~dst;
    count := !count + 2;
    if !i mod 5 = 4 then begin
      Rdt_ccp.Trace.checkpoint trace src;
      incr count
    end;
    incr i
  done;
  trace

let ccp_rebuild_test =
  let trace = build_big_trace () in
  Test.make
    ~name:(Printf.sprintf "ccp/full-rebuild/%dk-events" (big_trace_events / 1000))
    (Staged.stage (fun () -> ignore (Rdt_ccp.Ccp.of_trace trace)))

let ccp_incremental_test =
  let trace = build_big_trace () in
  let incr_view = Rdt_ccp.Ccp.Incremental.of_trace trace in
  let i = ref 0 in
  Test.make
    ~name:
      (Printf.sprintf "ccp/incremental-append/%dk-events"
         (big_trace_events / 1000))
    (Staged.stage (fun () ->
         let n = Trace.n trace in
         let src = !i mod n in
         Rdt_ccp.Trace.message trace ~src ~dst:((src + 1) mod n);
         incr i;
         ignore (Rdt_ccp.Ccp.Incremental.ccp incr_view)))

let ccp_tests = [ ccp_rebuild_test; ccp_incremental_test ]

(* --- durable log store (lib/store) ------------------------------------- *)

module Log_store = Rdt_store.Log_store
module Stable_store = Rdt_storage.Stable_store

let bench_tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rdtgc_bench_store_%d_%d" (Unix.getpid ()) !counter)

let store_entry index =
  {
    Stable_store.index;
    dv = [| index; 0; 0; 0 |];
    taken_at = float_of_int index;
    size_bytes = 256;
    payload = index;
  }

(* Steady state: append s^i and collect s^(i-8) — the live set stays at 8
   and auto-compaction keeps the directory bounded, so each call is the
   durable cost of one checkpoint under a working collector. *)
let store_append_setup ~config =
  let t = Log_store.create ~config ~pid:0 ~dir:(bench_tmp_dir ()) () in
  for j = 0 to 7 do
    Log_store.append t (store_entry j)
  done;
  let i = ref 8 in
  fun () ->
    Log_store.append t (store_entry !i);
    Log_store.eliminate t ~index:(!i - 8);
    incr i

let store_append_tests =
  [
    Test.make ~name:"store/append+collect/fsync=never"
      (Staged.stage
         (store_append_setup
            ~config:
              { Log_store.default_config with Log_store.fsync = Log_store.Never }));
    Test.make ~name:"store/append+collect/fsync=every64"
      (Staged.stage (store_append_setup ~config:Log_store.default_config));
    Test.make ~name:"store/append+collect/fsync=always,batch=1"
      (Staged.stage
         (store_append_setup
            ~config:
              {
                Log_store.default_config with
                Log_store.fsync = Log_store.Always;
                batch_records = 1;
              }));
  ]

(* One full compaction cycle: 16 checkpoints written and obsoleted, then
   the sealed garbage rewritten away.  Thanks to the paper's n+1 bound the
   rewrite set is tiny regardless of how much was collected. *)
let store_compact_setup () =
  let config = { Log_store.default_config with Log_store.auto_compact = false } in
  let t = Log_store.create ~config ~pid:0 ~dir:(bench_tmp_dir ()) () in
  Log_store.append t (store_entry 0);
  let top = ref 0 in
  fun () ->
    for j = 1 to 16 do
      Log_store.append t (store_entry (!top + j))
    done;
    for j = 0 to 15 do
      Log_store.eliminate t ~index:(!top + j)
    done;
    top := !top + 16;
    Log_store.compact t

let store_recovery_scan_setup ~records =
  let config =
    {
      Log_store.default_config with
      Log_store.auto_compact = false;
      fsync = Log_store.Never;
    }
  in
  let dir = bench_tmp_dir () in
  let t = Log_store.create ~config ~pid:0 ~dir () in
  for i = 0 to records - 1 do
    Log_store.append t (store_entry i);
    if i >= 8 then Log_store.eliminate t ~index:(i - 8)
  done;
  Log_store.close t;
  (* opening never writes, so every run scans the identical directory *)
  fun () ->
    let ro = Log_store.create ~config ~pid:0 ~dir () in
    Log_store.close ro

let store_tests =
  store_append_tests
  @ [
      Test.make ~name:"store/compact-cycle/16-ckpts"
        (Staged.stage (store_compact_setup ()));
      Test.make ~name:"store/recovery-scan/512-ckpts"
        (Staged.stage (store_recovery_scan_setup ~records:512));
    ]

let run_group ~quota tests =
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"" tests) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Analyze.all ols instance raw

(* (name, ns-per-run estimate, r^2) rows in name order *)
let collect_rows results =
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        (* tests are grouped under an anonymous root; drop its "/" *)
        let name =
          if String.length name > 0 && name.[0] = '/' then
            String.sub name 1 (String.length name - 1)
          else name
        in
        let est =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> Some e
          | Some [] | None -> None
        in
        (name, est, Analyze.OLS.r_square ols) :: acc)
      results []
  in
  List.sort compare rows

let print_rows rows =
  let t =
    Table.create
      ~columns:
        [
          ("benchmark", Table.Left);
          ("time/op", Table.Right);
          ("r^2", Table.Right);
        ]
  in
  let fmt_ns ns =
    if ns >= 1_000_000.0 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1_000.0 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.1f ns" ns
  in
  List.iter
    (fun (name, est, r2) ->
      let estimate = match est with Some e -> fmt_ns e | None -> "-" in
      let r2 =
        match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "-"
      in
      let name = if name = "" then "(root)" else name in
      Table.add_row t [ name; estimate; r2 ])
    rows;
  Table.print t

(* --- machine-readable output ------------------------------------------- *)

let json_path = "BENCH_micro.json"

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float = function
  | Some f when Float.is_finite f -> Printf.sprintf "%.4f" f
  | Some _ | None -> "null"

let write_json ~mode ~wall_time_s ~rows ~speedup =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"rdtgc-bench-micro/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"mode\": \"%s\",\n" mode);
  Buffer.add_string buf
    (Printf.sprintf "  \"domains\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"jobs\": %d,\n" !Exp_support.jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"wall_time_s\": %.3f,\n" wall_time_s);
  Buffer.add_string buf "  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, est, r2) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s }%s\n"
           (json_escape name) (json_float est) (json_float r2)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"derived\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"ccp_incremental_speedup\": %s\n"
       (json_float speedup));
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  let oc = open_out json_path in
  output_string oc (Buffer.contents buf);
  close_out oc

let find_ns rows prefix =
  List.find_map
    (fun (name, est, _) ->
      if
        String.length name >= String.length prefix
        && String.sub name 0 (String.length prefix) = prefix
      then est
      else None)
    rows

let micro_groups =
  [
    ("receive handler (plain FDAS vs merged FDAS+RDT-LGC)", receive_tests);
    ("checkpoint event with collection", checkpoint_tests);
    ( "ablation: per-event GC cost, incremental CCB vs full recompute",
      ablation_tests );
    ("Algorithm 3 rollback rebuild", rollback_tests);
    ("recovery line from stored DVs", recovery_line_tests);
    ("Theorem 1 retained-set computation", theorem1_tests);
    ("zigzag reachability (analysis substrate)", zigzag_tests);
    ("incremental CCP engine vs full rebuild", ccp_tests);
    ("durable log store: append path, compaction, recovery scan", store_tests);
  ]

(* [smoke] is the CI-oriented subset: just the incremental-CCP criterion
   with a small quota, a few seconds end to end. *)
let smoke_groups = [ ("incremental CCP engine vs full rebuild", ccp_tests) ]

let run ~mode () =
  Exp_support.section "EXP-E4: micro-benchmarks (Section 4.5 complexity claims)"
    "Per-operation cost via Bechamel OLS.  The paper claims the merged\n\
     implementation adds no asymptotic cost to the checkpointing protocol\n\
     (receive stays O(n)), Algorithm 2 events are O(1) amortized beyond\n\
     the DV scan, and Algorithm 3 runs in O(n log n) with n checkpoints\n\
     stored.  The last group measures the harness's own analysis engine:\n\
     appending to a live CCP view vs replaying the whole trace.";
  let wall0 = Unix.gettimeofday () in
  let groups, quota =
    match mode with
    | `Smoke -> (smoke_groups, 0.25)
    | `Micro -> (micro_groups, 0.75)
  in
  let rows =
    List.concat_map
      (fun (name, tests) ->
        Exp_support.subsection name;
        let rows = collect_rows (run_group ~quota tests) in
        print_rows rows;
        rows)
      groups
  in
  let wall_time_s = Unix.gettimeofday () -. wall0 in
  let speedup =
    match (find_ns rows "ccp/full-rebuild", find_ns rows "ccp/incremental-append")
    with
    | Some rebuild, Some incr when incr > 0.0 -> Some (rebuild /. incr)
    | _ -> None
  in
  let mode_name = match mode with `Smoke -> "smoke" | `Micro -> "micro" in
  write_json ~mode:mode_name ~wall_time_s ~rows ~speedup;
  (match speedup with
  | Some s ->
    Printf.printf "\nincremental CCP speedup over full rebuild: %.0fx\n" s
  | None -> ());
  Printf.printf "machine-readable results written to %s\n" json_path;
  Exp_support.check
    "incremental CCP appends >= 5x faster than a from-scratch rebuild"
    (match speedup with Some s -> s >= 5.0 | None -> false)

let all () = run ~mode:`Micro ()
let smoke () = run ~mode:`Smoke ()
