(* EXP-E4: micro-benchmarks (Bechamel) for the paper's complexity claims
   (Section 4.5):

   - the merged FDAS + RDT-LGC receive handler stays O(n), with a small
     constant over plain FDAS (one Bechamel test per n and variant);
   - the checkpoint event is O(1) beyond the store write;
   - Algorithm 3 (rollback) is cheap even with n retained checkpoints;
   - the simulator engine dispatches events without allocating (pooled
     event queue);
   - the analysis substrate (recovery line, Theorem 1, zigzag BFS) scales.

   Methodology.  Every test is steady-state: the driven state returns to
   an equivalent configuration after each call, so Bechamel's OLS linear
   regression over run counts is meaningful.  Three instances are sampled
   simultaneously per run batch — monotonic clock, minor words allocated
   and words promoted — and each is regressed against the run count, so
   next to [ns_per_run] we report [allocs_per_run] (minor words/event)
   and [promoted_per_run]: the allocation telemetry that makes hot-path
   regressions visible in BENCH_micro.json (DESIGN.md §10).

   Noise control: sub-microsecond benchmarks need both more measurement
   budget and larger run counts per sample than millisecond ones before
   the regression stabilizes — with the default 1 s quota and run counts
   starting at 1 (where a single sample sits at the timer-noise floor)
   the n=8 and incremental groups used to report *negative* r² (the OLS
   fit explained less variance than the sample mean, i.e. pure noise).
   Each group therefore declares a measurement class scaled to its
   per-run cost: [`Fast] (sub-microsecond) groups get a long quota, a
   raised sample limit and a raised starting run count (every sample then
   measures >= ~10 us of work, far above clock-read jitter) with *linear*
   run-count growth: the regression still sees a wide span of run counts,
   but no sample grows past a few milliseconds, so a single scheduler
   preemption cannot become a high-leverage outlier the way it can on the
   geometric schedule's 100 ms tail samples; [`Medium] a moderate version
   of the same; [`Slow] (>= 100 us
   per run, where even a run count of 1 is well above the noise floor)
   the Bechamel defaults with a short quota.  Groups must not mix cost
   scales: a millisecond test in a [`Fast] group would burn the whole
   quota on a handful of samples (which is why the CCP full-rebuild
   baseline lives in its own [`Slow] group).  Drivers in the low tens of
   nanoseconds additionally run [k] calls per measured run (see
   [make_batched]): their per-call cost is below single-measurement
   jitter, and reported figures are divided back to per-event values.
   Finally, a group containing a *negative* r² is re-measured (up to
   three attempts): a negative fit means an external event (scheduler
   preemption, major-GC slice) landed in a high-leverage sample, i.e. the
   trial was contaminated, not that the workload is non-linear.  Every
   reported r-square must therefore come out >= 0 on an otherwise idle
   machine; `make perf` diffs the resulting JSON against the committed
   baseline. *)

open Bechamel
module Middleware = Rdt_protocols.Middleware
module Protocol = Rdt_protocols.Protocol
module Control = Rdt_protocols.Control

(* Batched tests: a driver in the low tens of nanoseconds is smaller than
   the clock-read jitter of a single measurement, so its regression never
   stabilizes no matter the quota.  For those drivers one Bechamel run
   executes [k] calls in a counted loop (still allocation-free) and
   [run_group] divides every reported per-run figure by [k], so the table
   and BENCH_micro.json keep per-event semantics.  Batching also smooths
   amortized drivers whose per-call cost is bimodal (e.g. a checkpoint
   that triggers a collection sweep every few calls). *)
let batch_scale : (string, float) Hashtbl.t = Hashtbl.create 16

let make_batched ~name ~k f =
  if k <= 1 then Test.make ~name (Staged.stage f)
  else begin
    Hashtbl.replace batch_scale name (float_of_int k);
    Test.make ~name
      (Staged.stage (fun () ->
           for _ = 1 to k do
             f ()
           done))
  end
module Rdt_lgc = Rdt_gc.Rdt_lgc
module Global_gc = Rdt_gc.Global_gc
module Trace = Rdt_ccp.Trace
module Figures = Rdt_scenarios.Figures
module Script = Rdt_scenarios.Script
module Session = Rdt_recovery.Session
module Table = Rdt_metrics.Table

(* A middleware whose trace is muted, optionally with RDT-LGC attached,
   plus a message generator that always carries one fresh dependency from
   a fixed peer (the new-causal-info path of Algorithm 2). *)
let receive_setup ~n ~with_lgc =
  let trace = Trace.create ~n in
  let mw = Middleware.create ~n ~me:0 ~protocol:Protocol.fdas ~trace () in
  if with_lgc then begin
    let lgc =
      Rdt_lgc.create ~me:0 ~store:(Middleware.store mw)
        ~dv:(Middleware.dv mw) ~n
    in
    Rdt_lgc.attach lgc mw
  end;
  Trace.set_recording trace false;
  (* zero-allocation driver: one reusable message whose control borrows
     the generator's vector; each call advances the peer's interval so
     every receive still brings exactly one fresh dependency (the
     new-causal-info path of Algorithm 2) *)
  let peer_interval = ref 0 in
  let dv = Array.make n 0 in
  let msg =
    { Middleware.msg_id = 1; src = 1; control = Control.borrow ~dv ~index:0 }
  in
  fun () ->
    incr peer_interval;
    dv.(1) <- !peer_interval;
    Middleware.receive mw msg ~now:0.0

let receive_tests =
  List.concat_map
    (fun n ->
      (* only the ~150 ns n=8 case needs batching; the larger vectors are
         comfortably above the noise floor on their own *)
      let k = if n <= 8 then 8 else 1 in
      [
        make_batched
          ~name:(Printf.sprintf "receive/fdas/n=%d" n)
          ~k
          (receive_setup ~n ~with_lgc:false);
        make_batched
          ~name:(Printf.sprintf "receive/fdas+lgc/n=%d" n)
          ~k
          (receive_setup ~n ~with_lgc:true);
      ])
    [ 8; 64; 256 ]

(* Checkpoint event with merged collection: the collector keeps the store
   bounded, so the loop is steady-state. *)
let checkpoint_setup ~n =
  let trace = Trace.create ~n in
  let mw = Middleware.create ~n ~me:0 ~protocol:Protocol.fdas ~trace () in
  let lgc =
    Rdt_lgc.create ~me:0 ~store:(Middleware.store mw) ~dv:(Middleware.dv mw) ~n
  in
  Rdt_lgc.attach lgc mw;
  Trace.set_recording trace false;
  fun () -> Middleware.basic_checkpoint mw ~now:0.0

let checkpoint_test ~n =
  (* batched: the per-call cost is bimodal (most checkpoints are cheap,
     some trigger a collection sweep), so a batch amortizes a full cycle *)
  make_batched
    ~name:(Printf.sprintf "checkpoint+collect/n=%d" n)
    ~k:16 (checkpoint_setup ~n)

(* n=256 lives in its own [`Medium] group: at ~20 us per call (a 256-slot
   DV snapshot per checkpoint) a batch of 16 costs ~300 us, and under the
   [`Fast] class's start=100 every sample then aggregates ~30 ms — the
   3 s quota buys only a dozen samples and the regression came out at
   r² ~= 0.33 (see DESIGN.md §10).  This is the "groups must not mix
   cost scales" rule applied within a driver family; the row names keep
   the "checkpoint+collect/" prefix so the structural group set in
   BENCH_micro.json is unchanged. *)
let checkpoint_tests_small = List.map (fun n -> checkpoint_test ~n) [ 8; 64 ]
let checkpoint_tests_large = [ checkpoint_test ~n:256 ]

(* Engine throughput: the simulator's own dispatch loop, isolated from
   any protocol work.  [queue-churn] is the pooled event queue alone
   (schedule + fire of a pre-existing value: zero allocations once the
   pool is warm); [send-deliver] adds the network model and the engine's
   Deliver dispatch (the per-message Deliver cell is the only
   allocation). *)
module Event_queue = Rdt_sim.Event_queue
module Engine = Rdt_sim.Engine
module Network = Rdt_sim.Network

let queue_churn_setup () =
  let q = Event_queue.create () in
  let now = ref 0.0 in
  (* warm the pool so the steady state recycles instead of allocating *)
  Event_queue.add_unit q ~time:0.0 0;
  ignore (Event_queue.pop q);
  fun () ->
    now := !now +. 1.0;
    Event_queue.add_unit q ~time:!now 0;
    ignore (Event_queue.pop q)

let send_deliver_setup () =
  let e = Engine.create ~n:2 ~seed:42 ~net:Network.default () in
  Engine.set_receiver e 1 (fun ~src:_ _ -> ());
  fun () ->
    Engine.send e ~src:0 ~dst:1 0;
    ignore (Engine.step e)

let engine_tests =
  [
    make_batched ~name:"engine/queue-churn" ~k:32 (queue_churn_setup ());
    make_batched ~name:"engine/send-deliver" ~k:32 (send_deliver_setup ());
  ]

(* Sharded engine scaling: one whole simulation per run (create, seed
   ring-forwarding message chains, run to quiescence — ~42k deliveries),
   repeated at 1, 2 and 4 shards and two process counts.  Unlike the
   steady-state groups this driver pays the full setup each call,
   deliberately: construction and dispatch selection are part of what the
   shard count buys or costs, and the run-to-run workload is identical by
   the engine's determinism guarantee, so the OLS regression stays
   meaningful.

   The cases are sized so the in-flight event population (~1k entries)
   pushes one monolithic event queue's working set past L1 while each of
   four per-shard queues stays L1-resident — the regime where sharding
   pays even on a single core (DESIGN.md §13).  (chains) is the number of
   concurrent forwarding chains each process starts and (hops) their
   length, so in-flight events = n * chains throughout the run.

   Rows in this group additionally report events/second and the speedup
   against the shards=1 row of the same case (decorated after
   measurement; the event count is shard-invariant and counted once per
   case on one shard). *)
let engine_mt_cases = [ (256, 4, 40); (1024, 1, 40) ]
let engine_mt_shards = [ 1; 2; 4 ]

let engine_mt_run ~n ~shards ~chains ~hops () =
  let e = Engine.create ~n ~seed:42 ~net:Network.default ~shards () in
  for p = 0 to n - 1 do
    Engine.set_receiver e p (fun ~src:_ msg ->
        if msg > 0 then Engine.send e ~src:p ~dst:((p + 1) mod n) (msg - 1))
  done;
  for p = 0 to n - 1 do
    for _ = 1 to chains do
      Engine.send e ~src:p ~dst:((p + 1) mod n) hops
    done
  done;
  Engine.run e;
  (Engine.stats e).Engine.events

let engine_mt_name ~n ~shards =
  Printf.sprintf "engine-mt/n=%d/shards=%d" n shards

(* events per case, counted once on one shard; lazy so modes that never
   measure the group (smoke, perf-diff) don't pay the dry runs *)
let engine_mt_events =
  lazy
    (List.map
       (fun (n, chains, hops) ->
         (n, engine_mt_run ~n ~shards:1 ~chains ~hops ()))
       engine_mt_cases)

let engine_mt_tests =
  List.concat_map
    (fun (n, chains, hops) ->
      List.map
        (fun shards ->
          Test.make
            ~name:(engine_mt_name ~n ~shards)
            (Staged.stage (fun () ->
                 ignore (engine_mt_run ~n ~shards ~chains ~hops ()))))
        engine_mt_shards)
    engine_mt_cases

(* Algorithm 3 on the worst-case state: every process retains n
   checkpoints and the rebuild pins them all again (no elimination), so
   repeated calls are equivalent. *)
let rollback_setup ~n =
  let s = Figures.worst_case ~n in
  let lgc =
    match Script.collector s 0 with Some l -> l | None -> assert false
  in
  let li = Script.dv s 0 in
  fun () -> Rdt_lgc.on_rollback lgc ~li

let rollback_tests =
  List.map
    (fun n ->
      Test.make
        ~name:(Printf.sprintf "algorithm3-rollback/n=%d" n)
        (Staged.stage (rollback_setup ~n)))
    [ 8; 32; 64 ]

(* Ablation: the incremental UC/CCB update on a new dependency vs
   recomputing the Theorem-2 retained set from scratch (what a collector
   without the paper's bookkeeping would do on every event). *)
let incremental_update_setup ~n =
  let s = Figures.worst_case ~n in
  let lgc =
    match Script.collector s 0 with Some l -> l | None -> assert false
  in
  fun () -> Rdt_lgc.on_new_dependency lgc 1

let recompute_setup ~n =
  let s = Figures.worst_case ~n in
  let store = Script.store s 0 in
  let live_dv = Script.dv s 0 in
  fun () ->
    let entries = Array.of_list (Rdt_storage.Stable_store.retained store) in
    ignore (Global_gc.theorem2_collectable ~entries ~live_dv)

let ablation_tests =
  List.concat_map
    (fun n ->
      [
        (* ~15 ns per call: the flagship case for batching *)
        make_batched
          ~name:(Printf.sprintf "per-event/incremental-ccb/n=%d" n)
          ~k:64
          (incremental_update_setup ~n);
        Test.make
          ~name:(Printf.sprintf "per-event/theorem2-recompute/n=%d" n)
          (Staged.stage (recompute_setup ~n));
      ])
    [ 8; 32; 64 ]

(* Pure analysis functions on the worst-case state. *)
let snapshots_of s =
  Array.init (Script.n s) (fun pid ->
      Session.snapshot_of (Script.middleware s pid))

let recovery_line_tests =
  List.map
    (fun n ->
      let s = Figures.worst_case ~n in
      let snaps = snapshots_of s in
      make_batched
        ~name:(Printf.sprintf "recovery-line/n=%d" n)
        ~k:(if n <= 8 then 8 else 1)
        (fun () ->
          ignore
            (Rdt_recovery.Recovery_line.from_snapshots snaps ~faulty:[ 0 ])))
    [ 8; 32; 64 ]

let theorem1_tests =
  List.map
    (fun n ->
      let s = Figures.worst_case ~n in
      let snaps = snapshots_of s in
      let li = Global_gc.last_interval_vector snaps in
      make_batched
        ~name:(Printf.sprintf "theorem1-retained/n=%d" n)
        ~k:(if n <= 8 then 8 else 1)
        (fun () -> ignore (Global_gc.theorem1_retained snaps ~me:0 ~li)))
    [ 8; 32; 64 ]

let zigzag_tests =
  List.map
    (fun n ->
      let s = Figures.worst_case ~n in
      let ccp = Script.ccp s in
      Test.make
        ~name:(Printf.sprintf "zigzag-reach/n=%d" n)
        (Staged.stage (fun () ->
             ignore (Rdt_ccp.Zigzag.reach ccp ~src:{ Rdt_ccp.Ccp.pid = 0; index = 0 }))))
    [ 4; 8; 16 ]

(* Incremental CCP engine vs from-scratch rebuild.  A 10k-event trace is
   the harness's sampling scenario: the oracle-instrumented runner
   queries the ground-truth CCP at every sample point, so the cost that
   matters is appending the events since the last query and asking
   again, not replaying the whole history. *)
let big_trace_events = 10_000

let build_big_trace () =
  let n = 8 in
  let trace = Trace.init_with_initial_checkpoints ~n in
  let count = ref n in
  let i = ref 0 in
  while !count < big_trace_events do
    let src = !i mod n in
    let dst = (src + 1 + (!i / n mod (n - 1))) mod n in
    Rdt_ccp.Trace.message trace ~src ~dst;
    count := !count + 2;
    if !i mod 5 = 4 then begin
      Rdt_ccp.Trace.checkpoint trace src;
      incr count
    end;
    incr i
  done;
  trace

let ccp_rebuild_test =
  let trace = build_big_trace () in
  Test.make
    ~name:(Printf.sprintf "ccp/full-rebuild/%dk-events" (big_trace_events / 1000))
    (Staged.stage (fun () -> ignore (Rdt_ccp.Ccp.of_trace trace)))

let ccp_incremental_test =
  let trace = build_big_trace () in
  let incr_view = Rdt_ccp.Ccp.Incremental.of_trace trace in
  let i = ref 0 in
  make_batched
    ~name:
      (Printf.sprintf "ccp/incremental-append/%dk-events"
         (big_trace_events / 1000))
    ~k:8
    (fun () ->
      let n = Trace.n trace in
      let src = !i mod n in
      Rdt_ccp.Trace.message trace ~src ~dst:((src + 1) mod n);
      incr i;
      ignore (Rdt_ccp.Ccp.Incremental.ccp incr_view))

let ccp_tests = [ ccp_rebuild_test; ccp_incremental_test ]

(* --- durable log store (lib/store) ------------------------------------- *)

module Log_store = Rdt_store.Log_store
module Stable_store = Rdt_storage.Stable_store

let bench_tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rdtgc_bench_store_%d_%d" (Unix.getpid ()) !counter)

let store_entry index =
  {
    Stable_store.index;
    dv = [| index; 0; 0; 0 |];
    taken_at = float_of_int index;
    size_bytes = 256;
    payload = index;
  }

(* Steady state: append s^i and collect s^(i-8) — the live set stays at 8
   and auto-compaction keeps the directory bounded, so each call is the
   durable cost of one checkpoint under a working collector. *)
let store_append_setup ~config =
  let t = Log_store.create ~config ~pid:0 ~dir:(bench_tmp_dir ()) () in
  for j = 0 to 7 do
    Log_store.append t (store_entry j)
  done;
  let i = ref 8 in
  fun () ->
    Log_store.append t (store_entry !i);
    Log_store.eliminate t ~index:(!i - 8);
    incr i

let store_append_tests =
  (* fsync=never and fsync=every64 pay their durability cost in lumps (a
     kernel writeback or an fsync every 64 records, plus an auto-compaction
     every few dozen eliminations), so one run covers a full 64-append
     cycle and the figures are divided back per append.  fsync=always pays
     the same cost on every call and needs no batching. *)
  [
    make_batched ~name:"store/append+collect/fsync=never" ~k:64
      (store_append_setup
         ~config:
           { Log_store.default_config with Log_store.fsync = Log_store.Never });
    make_batched ~name:"store/append+collect/fsync=every64" ~k:64
      (store_append_setup ~config:Log_store.default_config);
    Test.make ~name:"store/append+collect/fsync=always,batch=1"
      (Staged.stage
         (store_append_setup
            ~config:
              {
                Log_store.default_config with
                Log_store.fsync = Log_store.Always;
                batch_records = 1;
              }));
  ]

(* One full compaction cycle: 16 checkpoints written and obsoleted, then
   the sealed garbage rewritten away.  Thanks to the paper's n+1 bound the
   rewrite set is tiny regardless of how much was collected. *)
let store_compact_setup () =
  let config = { Log_store.default_config with Log_store.auto_compact = false } in
  let t = Log_store.create ~config ~pid:0 ~dir:(bench_tmp_dir ()) () in
  Log_store.append t (store_entry 0);
  let top = ref 0 in
  fun () ->
    for j = 1 to 16 do
      Log_store.append t (store_entry (!top + j))
    done;
    for j = 0 to 15 do
      Log_store.eliminate t ~index:(!top + j)
    done;
    top := !top + 16;
    Log_store.compact t

let store_recovery_scan_setup ~records =
  let config =
    {
      Log_store.default_config with
      Log_store.auto_compact = false;
      fsync = Log_store.Never;
    }
  in
  let dir = bench_tmp_dir () in
  let t = Log_store.create ~config ~pid:0 ~dir () in
  for i = 0 to records - 1 do
    Log_store.append t (store_entry i);
    if i >= 8 then Log_store.eliminate t ~index:(i - 8)
  done;
  Log_store.close t;
  (* opening never writes, so every run scans the identical directory *)
  fun () ->
    let ro = Log_store.create ~config ~pid:0 ~dir () in
    Log_store.close ro

let store_tests =
  store_append_tests
  @ [
      Test.make ~name:"store/compact-cycle/16-ckpts"
        (Staged.stage (store_compact_setup ()));
      Test.make ~name:"store/recovery-scan/512-ckpts"
        (Staged.stage (store_recovery_scan_setup ~records:512));
    ]

type row = {
  name : string;
  ns : float option;  (** monotonic ns per run (OLS slope) *)
  r2 : float option;  (** goodness of fit of the time regression *)
  minor_words : float option;  (** minor-heap words allocated per run *)
  promoted : float option;  (** words promoted to the major heap per run *)
  ev_s : float option;
      (** whole-run scaling rows only: simulation events per second *)
  speedup : float option;
      (** whole-run scaling rows only: ns of the shards=1 row of the same
          case divided by this row's ns (> 1 means sharding paid off) *)
}

(* Measurement class per cost scale; see the methodology note above.  The
   slope of a sub-microsecond benchmark is dominated by timer quantization
   and scheduling noise unless every sample aggregates enough runs to sit
   well above the noise floor (hence [start]) and the regression still
   sees a wide span of run counts within the quota (hence the faster
   geometric growth). *)
let cfg_of_speed speed =
  let limit, quota, start, sampling =
    match speed with
    | `Fast -> (2000, 3.0, 100, `Linear 20)
    | `Medium -> (1000, 1.5, 10, `Linear 10)
    | `Slow -> (2000, 0.75, 1, `Geometric 1.01)
    (* I/O-bound groups: per-run costs are milliseconds once a full
       durability cycle is batched in, so a wide run-count span needs a
       long quota *)
    | `SlowIO -> (2000, 3.0, 1, `Geometric 1.01)
    (* whole-simulation drivers (tens of milliseconds per run): even one
       run dwarfs the noise floor, so run counts grow one at a time and a
       handful of samples suffice; a geometric schedule would blow the
       quota on a single huge tail sample *)
    | `WholeRun -> (60, 3.0, 1, `Linear 1)
  in
  Benchmark.cfg ~limit ~quota:(Time.second quota) ~start ~sampling ~kde:None
    ()

let measure_group ~speed tests =
  let clock = Toolkit.Instance.monotonic_clock in
  let minor = Toolkit.Instance.minor_allocated in
  let promoted = Toolkit.Instance.promoted in
  let raw =
    Benchmark.all (cfg_of_speed speed)
      [ clock; minor; promoted ]
      (Test.make_grouped ~name:"" tests)
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let estimate results name =
    match Hashtbl.find_opt results name with
    | None -> None
    | Some ols -> (
      match Analyze.OLS.estimates ols with
      | Some (e :: _) -> Some e
      | Some [] | None -> None)
  in
  let times = Analyze.all ols clock raw in
  let minors = Analyze.all ols minor raw in
  let promotions = Analyze.all ols promoted raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let clean =
          (* tests are grouped under an anonymous root; drop its "/" *)
          if String.length name > 0 && name.[0] = '/' then
            String.sub name 1 (String.length name - 1)
          else name
        in
        let scale =
          match Hashtbl.find_opt batch_scale clean with
          | Some k -> k
          | None -> 1.0
        in
        let per_event = Option.map (fun v -> v /. scale) in
        {
          name = clean;
          ns = per_event (estimate times name);
          r2 = Analyze.OLS.r_square ols;
          minor_words = per_event (estimate minors name);
          promoted = per_event (estimate promotions name);
          ev_s = None;
          speedup = None;
        }
        :: acc)
      times []
  in
  List.sort compare rows

(* A negative r² means the linear fit explained less variance than the
   sample mean: the measurement was contaminated by an external event (a
   scheduler preemption or major-GC slice landing in a high-leverage
   sample), not that the workload is non-linear in the run count.  Such a
   group is re-measured, like re-running a contaminated trial; after
   [max_attempts] the attempt with the fewest contaminated rows is kept
   so a persistently noisy machine still terminates with data. *)
let run_group ~speed tests =
  let max_attempts = 3 in
  let contaminated rows =
    List.length
      (List.filter (fun r -> match r.r2 with Some v -> v < 0.0 | None -> true)
         rows)
  in
  let rec go attempt best =
    let rows = measure_group ~speed tests in
    let bad = contaminated rows in
    let best =
      match best with
      | Some (_, best_bad) when best_bad <= bad -> best
      | _ -> Some (rows, bad)
    in
    if bad = 0 || attempt >= max_attempts then (
      (match best with
      | Some (_, n) when n > 0 ->
        Printf.printf
          "  (%d benchmark(s) still noise-contaminated after %d attempts)\n%!"
          n attempt
      | _ -> ());
      match best with Some (rows, _) -> rows | None -> rows)
    else (
      Printf.printf
        "  (re-measuring group: %d noise-contaminated benchmark(s), attempt \
         %d/%d)\n\
         %!"
        bad (attempt + 1) max_attempts;
      go (attempt + 1) best)
  in
  go 1 None

(* Decorate the engine-mt whole-run rows with simulation events/second
   and the speedup against the shards=1 row of the same case.  The event
   count is shard-invariant (the engine's determinism guarantee), so it
   is counted once per case on one shard; rows from other groups pass
   through untouched. *)
let decorate_engine_mt rows =
  let case_of name =
    List.find_map
      (fun (n, _, _) ->
        List.find_map
          (fun shards ->
            if String.equal name (engine_mt_name ~n ~shards) then Some n
            else None)
          engine_mt_shards)
      engine_mt_cases
  in
  let ns_of name =
    List.find_map
      (fun r -> if String.equal r.name name then r.ns else None)
      rows
  in
  List.map
    (fun row ->
      match case_of row.name with
      | None -> row
      | Some n ->
        let events =
          List.assoc_opt n (Lazy.force engine_mt_events)
          |> Option.map float_of_int
        in
        let ev_s =
          match (events, row.ns) with
          | Some ev, Some ns when ns > 0.0 -> Some (ev /. (ns *. 1e-9))
          | _ -> None
        in
        let speedup =
          match (ns_of (engine_mt_name ~n ~shards:1), row.ns) with
          | Some base, Some ns when ns > 0.0 -> Some (base /. ns)
          | _ -> None
        in
        { row with ev_s; speedup })
    rows

let print_rows rows =
  let scaling =
    List.exists (fun r -> r.ev_s <> None || r.speedup <> None) rows
  in
  let t =
    Table.create
      ~columns:
        ([
           ("benchmark", Table.Left);
           ("time/op", Table.Right);
           ("r^2", Table.Right);
           ("words/op", Table.Right);
           ("promoted/op", Table.Right);
         ]
        @ if scaling then [ ("ev/s", Table.Right); ("speedup", Table.Right) ]
          else [])
  in
  let fmt_ns ns =
    if ns >= 1_000_000.0 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1_000.0 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.1f ns" ns
  in
  let fmt_opt f = function Some v -> f v | None -> "-" in
  List.iter
    (fun row ->
      let name = if row.name = "" then "(root)" else row.name in
      Table.add_row t
        ([
           name;
           fmt_opt fmt_ns row.ns;
           fmt_opt (Printf.sprintf "%.4f") row.r2;
           fmt_opt (Printf.sprintf "%.1f") row.minor_words;
           fmt_opt (Printf.sprintf "%.1f") row.promoted;
         ]
        @
        if scaling then
          [
            fmt_opt (fun v -> Printf.sprintf "%.0f" v) row.ev_s;
            fmt_opt (Printf.sprintf "%.2fx") row.speedup;
          ]
        else []))
    rows;
  Table.print t

(* --- machine-readable output ------------------------------------------- *)

let json_path = "BENCH_micro.json"

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float = function
  | Some f when Float.is_finite f -> Printf.sprintf "%.4f" f
  | Some _ | None -> "null"

let write_json ~mode ~wall_time_s ~rows ~speedup =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"rdtgc-bench-micro/3\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"mode\": \"%s\",\n" mode);
  Buffer.add_string buf
    (Printf.sprintf "  \"domains\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"jobs\": %d,\n" !Exp_support.jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"wall_time_s\": %.3f,\n" wall_time_s);
  Buffer.add_string buf "  \"benchmarks\": [\n";
  List.iteri
    (fun i row ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s, \
            \"allocs_per_run\": %s, \"promoted_per_run\": %s, \
            \"events_per_sec\": %s, \"speedup_vs_seq\": %s }%s\n"
           (json_escape row.name) (json_float row.ns) (json_float row.r2)
           (json_float row.minor_words)
           (json_float row.promoted) (json_float row.ev_s)
           (json_float row.speedup)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"derived\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"ccp_incremental_speedup\": %s\n"
       (json_float speedup));
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  let oc = open_out json_path in
  output_string oc (Buffer.contents buf);
  close_out oc

let find_ns rows prefix =
  List.find_map
    (fun row ->
      if
        String.length row.name >= String.length prefix
        && String.sub row.name 0 (String.length prefix) = prefix
      then row.ns
      else None)
    rows

let micro_groups =
  [
    ( "receive handler (plain FDAS vs merged FDAS+RDT-LGC)",
      `Fast,
      receive_tests );
    ("checkpoint event with collection", `Fast, checkpoint_tests_small);
    ( "checkpoint event with collection (large n)",
      `Medium,
      checkpoint_tests_large );
    ("engine throughput (pooled event queue, dispatch)", `Fast, engine_tests);
    ( "sharded engine: whole-run throughput vs shard count",
      `WholeRun,
      engine_mt_tests );
    ( "ablation: per-event GC cost, incremental CCB vs full recompute",
      `Fast,
      ablation_tests );
    ("Algorithm 3 rollback rebuild", `Medium, rollback_tests);
    ("recovery line from stored DVs", `Fast, recovery_line_tests);
    ("Theorem 1 retained-set computation", `Fast, theorem1_tests);
    ("zigzag reachability (analysis substrate)", `Medium, zigzag_tests);
    (* per-event append is sub-microsecond, the from-scratch rebuild is
       milliseconds — mixed scales must not share a measurement class.
       The rebuild must also run *before* the append group: the append
       driver grows its trace for the whole quota, and the resulting live
       heap would otherwise slow every later allocating benchmark through
       major-GC marking.  The append group runs last for the same
       reason. *)
    ("full CCP rebuild baseline", `Slow, [ ccp_rebuild_test ]);
    ( "durable log store: append path, compaction, recovery scan",
      `SlowIO,
      store_tests );
    ( "incremental CCP engine (per-event append)",
      `Fast,
      [ ccp_incremental_test ] );
  ]

(* [smoke] is the CI-oriented subset: just the incremental-CCP criterion
   with a small quota, a few seconds end to end. *)
let smoke_groups =
  [ ("incremental CCP engine vs full rebuild", `Slow, ccp_tests) ]

let run ~mode () =
  Exp_support.section "EXP-E4: micro-benchmarks (Section 4.5 complexity claims)"
    "Per-operation cost via Bechamel OLS.  The paper claims the merged\n\
     implementation adds no asymptotic cost to the checkpointing protocol\n\
     (receive stays O(n)), Algorithm 2 events are O(1) amortized beyond\n\
     the DV scan, and Algorithm 3 runs in O(n log n) with n checkpoints\n\
     stored.  words/op and promoted/op are the per-event allocation\n\
     telemetry: the receive and engine hot paths must sit at ~0 words in\n\
     steady state, and a checkpoint must cost exactly its store-boundary\n\
     snapshot (DESIGN.md \xc2\xa710).  The CCP group measures the harness's\n\
     own analysis engine: appending to a live view vs replaying the\n\
     whole trace.";
  let wall0 = Unix.gettimeofday () in
  let groups =
    match mode with `Smoke -> smoke_groups | `Micro -> micro_groups
  in
  let rows =
    List.concat_map
      (fun (name, speed, tests) ->
        Exp_support.subsection name;
        let rows = run_group ~speed tests in
        let rows = decorate_engine_mt rows in
        print_rows rows;
        rows)
      groups
  in
  let wall_time_s = Unix.gettimeofday () -. wall0 in
  let speedup =
    match (find_ns rows "ccp/full-rebuild", find_ns rows "ccp/incremental-append")
    with
    | Some rebuild, Some incr when incr > 0.0 -> Some (rebuild /. incr)
    | _ -> None
  in
  let mode_name = match mode with `Smoke -> "smoke" | `Micro -> "micro" in
  write_json ~mode:mode_name ~wall_time_s ~rows ~speedup;
  (match speedup with
  | Some s ->
    Printf.printf "\nincremental CCP speedup over full rebuild: %.0fx\n" s
  | None -> ());
  Printf.printf "machine-readable results written to %s\n" json_path;
  Exp_support.check
    "incremental CCP appends >= 5x faster than a from-scratch rebuild"
    (match speedup with Some s -> s >= 5.0 | None -> false)

let all () = run ~mode:`Micro ()
let smoke () = run ~mode:`Smoke ()

(* --- CI multicore gate ------------------------------------------------- *)

(* shards=4 must not be slower than shards=1 on the whole-run scaling
   workload.  Min-of-k wall clock on each side: the workload is
   deterministic, so all measurement noise is additive (a preemption only
   ever makes a run slower) and the minimum is the statistic closest to
   the true cost.  The n=1024 deep-queue case is the gate workload — it
   carries the structural effect (one monolithic queue's working set
   spills past L1 while per-shard queues stay resident, DESIGN.md §13)
   rather than a few-percent margin that CI noise could flip.  The
   [tolerance] absorbs residual jitter on busy shared CI machines.

   The race only means something on a host with >= 4 hardware threads:
   below that, Engine autotune runs shards=4 on the merged inline
   executor (workers=1 — no domains, no barriers), so the "parallel"
   side would not exercise parallel dispatch at all and the ratio would
   gate nothing.  On such hosts the gate skips with an explicit message
   instead of reporting a vacuous pass/fail.  [advisory] reports the
   ratio but never fails — for shared runners where a wall-clock hard
   gate is too flaky to enforce. *)
let mt_gate ?(tolerance = 0.10) ?(advisory = false) () =
  let cores = Rdt_parallel.Barrier_team.hardware_parallelism () in
  if cores < 4 then begin
    Printf.printf
      "mt-gate: SKIP — host has %d hardware thread(s) < 4; autotune would \
       run shards=4 on the merged inline executor, so the race would not \
       measure parallel dispatch\n\
       %!"
      cores;
    true
  end
  else begin
  let n, chains, hops =
    List.find (fun (n, _, _) -> n = 1024) engine_mt_cases
  in
  let min_of k f =
    ignore (f ());
    (* warm run: page in code, warm the allocator *)
    let best = ref infinity in
    for _ = 1 to k do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let t1 = min_of 7 (fun () -> engine_mt_run ~n ~shards:1 ~chains ~hops ()) in
  let t4 = min_of 7 (fun () -> engine_mt_run ~n ~shards:4 ~chains ~hops ()) in
  let ratio = t4 /. t1 in
  Printf.printf
    "mt-gate: n=%d shards=1 %.3f ms | shards=4 %.3f ms | ratio %.3f (pass: \
     <= %.2f)%s\n\
     %!"
    n (t1 *. 1e3) (t4 *. 1e3) ratio
    (1.0 +. tolerance)
    (if advisory then " [advisory: not enforced]" else "");
  advisory || ratio <= 1.0 +. tolerance
  end
