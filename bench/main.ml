(* Benchmark harness: regenerates every figure of the paper (F1-F5) and
   runs the practical evaluation it proposes as future work (E1-E3, E5,
   E6), plus Bechamel micro-benchmarks for the complexity claims (E4).

   Usage:
     dune exec bench/main.exe                 # everything, sequential
     dune exec bench/main.exe -- figures      # only F1-F5
     dune exec bench/main.exe -- eval -j 8    # only E1-E3, E5-E8, 8 domains
     dune exec bench/main.exe -- micro        # only the Bechamel benches
     dune exec bench/main.exe -- smoke        # fast micro subset
     dune exec bench/main.exe -- perf-diff BASELINE.json CURRENT.json
                                              # non-fatal regression report
     dune exec bench/main.exe -- mt-gate      # CI gate: shards=4 must not
                                              # lose to shards=1 (exit 1;
                                              # skips on hosts < 4 threads;
                                              # --advisory: report only)

   [-j N] fans the independent simulation cells of the figure/eval
   experiments over N domains (default 1; [-j 0] means the machine's
   recommended domain count).  [--shards K] runs every simulation cell
   on the K-shard engine (default 1).  The report is byte-identical at
   any N and any K.  [micro] and [smoke] also write machine-readable
   BENCH_micro.json. *)

let usage () =
  prerr_endline
    "usage: main.exe [all|figures|eval|micro|smoke] [-j N] [--shards K]\n\
    \       main.exe perf-diff BASELINE.json CURRENT.json\n\
    \       main.exe mt-gate [--advisory]";
  exit 2

let () =
  (* perf-diff is a plain file-to-file comparison, not an experiment *)
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = "perf-diff" then begin
    if Array.length Sys.argv <> 4 then usage ();
    Perf_diff.run ~baseline:Sys.argv.(2) ~current:Sys.argv.(3);
    exit 0
  end;
  (* mt-gate is the CI multicore check: a short min-of-k wall-clock race
     of the whole-run scaling workload at shards=1 vs shards=4.  It skips
     itself (exit 0, with a message) on hosts with < 4 hardware threads,
     where autotune would bypass parallel dispatch; [--advisory] reports
     the ratio without enforcing it (noisy shared runners). *)
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = "mt-gate" then begin
    let advisory =
      match Array.length Sys.argv with
      | 2 -> false
      | 3 when Sys.argv.(2) = "--advisory" -> true
      | _ -> usage ()
    in
    exit (if Micro.mt_gate ~advisory () then 0 else 1)
  end;
  let what = ref "all" in
  let rec parse i =
    if i < Array.length Sys.argv then begin
      (match Sys.argv.(i) with
      | "-j" ->
        if i + 1 >= Array.length Sys.argv then usage ();
        let n =
          match int_of_string_opt Sys.argv.(i + 1) with
          | Some n when n >= 0 -> n
          | Some _ | None -> usage ()
        in
        Exp_support.set_jobs
          (if n = 0 then Rdt_parallel.Domain_pool.default_jobs () else n);
        parse (i + 2)
      | "--shards" ->
        if i + 1 >= Array.length Sys.argv then usage ();
        (match int_of_string_opt Sys.argv.(i + 1) with
        | Some n when n >= 1 -> Exp_support.set_shards n
        | Some _ | None -> usage ());
        parse (i + 2)
      | ("all" | "figures" | "eval" | "micro" | "smoke") as w ->
        what := w;
        parse (i + 1)
      | _ -> usage ())
    end
  in
  parse 1;
  let what = !what in
  Printf.printf
    "RDT-LGC benchmark harness — reproduction of Schmidt, Garcia, Pedone &\n\
     Buzato, \"Optimal Asynchronous Garbage Collection for RDT\n\
     Checkpointing Protocols\" (ICDCS 2005)\n";
  let ran_figures =
    if what = "all" || what = "figures" then Some (Exp_figures.all ()) else None
  in
  let ran_eval =
    if what = "all" || what = "eval" then Some (Exp_eval.all ()) else None
  in
  let ran_micro =
    if what = "all" || what = "micro" then Some (Micro.all ())
    else if what = "smoke" then Some (Micro.smoke ())
    else None
  in
  Exp_support.shutdown_pool ();
  let verdict label = function
    | None -> ()
    | Some true -> Printf.printf "%s: all checks passed\n" label
    | Some false -> Printf.printf "%s: SOME CHECKS FAILED\n" label
  in
  print_newline ();
  verdict "figure experiments (F1-F5)" ran_figures;
  verdict "evaluation experiments (E1-E3, E5-E8)" ran_eval;
  verdict "micro-benchmarks (E4)" ran_micro;
  let failed =
    List.exists (function Some false -> true | _ -> false)
      [ ran_figures; ran_eval; ran_micro ]
  in
  if failed then exit 1
