(* Shared helpers for the experiment harness. *)

module Table = Rdt_metrics.Table
module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config
module Workload = Rdt_workload.Workload
module Domain_pool = Rdt_parallel.Domain_pool

(* --- parallel fan-out -------------------------------------------------- *)

(* Experiments are organized in two phases so the report stays
   byte-identical at any [-j]: phase 1 enumerates the independent
   simulation cells in loop order and evaluates them on the pool (cells
   never print), phase 2 replays the same loops sequentially, popping
   each cell's result in order and formatting the report. *)

let jobs = ref 1
let set_jobs n = jobs := max 1 n

(* Shard count folded into every simulation cell the harness builds via
   [base_config] (the figure/eval sweeps).  The reports stay
   byte-identical at any shard count — that is the engine's determinism
   guarantee — so sweeping [--shards] is a scaling knob and a standing
   end-to-end exercise of the sharded dispatch path, not a different
   experiment. *)
let shards = ref 1
let set_shards n = shards := max 1 n

let pool = ref None

let get_pool () =
  match !pool with
  | Some p -> p
  | None ->
    let p = Domain_pool.create ~jobs:!jobs () in
    pool := Some p;
    p

let shutdown_pool () =
  match !pool with
  | Some p ->
    Domain_pool.shutdown p;
    pool := None
  | None -> ()

let par_map f xs = Domain_pool.map (get_pool ()) f xs

let par_run cells = par_map (fun cell -> cell ()) cells

let popper results =
  let rest = ref results in
  fun () ->
    match !rest with
    | x :: tl ->
      rest := tl;
      x
    | [] -> invalid_arg "Exp_support.popper: phase 2 popped too many results"

let section title description =
  Printf.printf "\n=== %s ===\n%s\n\n" title description

let subsection title = Printf.printf "\n--- %s ---\n" title

let check label ok =
  Printf.printf "[%s] %s\n" (if ok then "PASS" else "FAIL") label;
  ok

let run_sim cfg =
  let t = Runner.create cfg in
  Runner.run t;
  t

let fmt_ints l = "{" ^ String.concat "," (List.map string_of_int l) ^ "}"

let fmt_int_array a = fmt_ints (Array.to_list a)

let fmt_uc uc =
  "("
  ^ String.concat ","
      (Array.to_list
         (Array.map (function None -> "*" | Some i -> string_of_int i) uc))
  ^ ")"

let base_workload pattern =
  {
    Workload.pattern;
    send_mean_interval = 0.8;
    basic_ckpt_mean_interval = 4.0;
    reply_probability = 0.3;
  }

let base_config ~n ~seed ~gc ~pattern ~duration =
  {
    Sim_config.default with
    n;
    seed;
    duration;
    gc;
    workload = base_workload pattern;
    sample_interval = 2.0;
    shards = !shards;
  }
