(* The practical evaluation the paper defers to future work (Section 6),
   experiments E1-E3, E5, E6 of DESIGN.md. *)

open Exp_support
module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config
module Workload = Rdt_workload.Workload
module Protocol = Rdt_protocols.Protocol
module Series = Rdt_metrics.Series
module Stats = Rdt_metrics.Stats
module Table = Rdt_metrics.Table
module Oracle = Rdt_gc.Oracle
module Ccp = Rdt_ccp.Ccp
module Stable_store = Rdt_storage.Stable_store
module Middleware = Rdt_protocols.Middleware
module Global_gc = Rdt_gc.Global_gc
module Session = Rdt_recovery.Session

let seeds = [ 11; 23; 37 ]

(* --- E1: retained checkpoints over time, per collector ----------------- *)

let exp_e1 () =
  section "EXP-E1: uncollected checkpoints per collector (paper Section 6)"
    "Mean and peak of the total retained stable checkpoints, sampled over\n\
     the run, per garbage collector.  'optimal' is instantaneous Theorem-1\n\
     knowledge sampled inside the RDT-LGC run — the unreachable lower\n\
     bound for any collector; 'n bound' checks the paper's per-process\n\
     guarantee for RDT-LGC.  Coordinated baselines exchange control\n\
     messages; RDT-LGC exchanges none.";
  let policies =
    [
      ("no-gc", Sim_config.No_gc);
      ("simple/5", Sim_config.Simple { period = 5.0 });
      ("coordinated/5", Sim_config.Coordinated { period = 5.0 });
      ("rdt-lgc", Sim_config.Local);
      ("oracle/2", Sim_config.Oracle_periodic { period = 2.0 });
    ]
  in
  let t =
    Table.create
      ~columns:
        [
          ("workload", Table.Left);
          ("n", Table.Right);
          ("collector", Table.Left);
          ("mean retained", Table.Right);
          ("± seeds", Table.Right);
          ("peak retained", Table.Right);
          ("mean/process", Table.Right);
          ("ctrl msgs", Table.Right);
        ]
  in
  let patterns =
    [
      (Workload.Uniform, "uniform");
      (Workload.Client_server { servers = 2 }, "client-server");
      (Workload.Bursty { burst = 3 }, "bursty:3");
    ]
  in
  let sizes = [ 4; 8 ] in
  (* phase 1: one cell per (pattern, n, policy, seed) *)
  let cells =
    List.concat_map
      (fun (pattern, _) ->
        List.concat_map
          (fun n ->
            List.concat_map
              (fun (_, gc) ->
                List.map
                  (fun seed () ->
                    let cfg = base_config ~n ~seed ~gc ~pattern ~duration:80.0 in
                    let s = Runner.summary (run_sim cfg) in
                    let bound_ok =
                      Array.for_all (fun final -> final <= n)
                        s.Runner.final_retained
                      && Array.for_all (fun p -> p <= n + 1)
                           s.Runner.peak_retained
                    in
                    ( s.Runner.mean_total_retained,
                      s.Runner.peak_retained_global,
                      s.Runner.control_messages,
                      s.Runner.mean_optimal_retained,
                      bound_ok ))
                  seeds)
              policies)
          sizes)
      patterns
  in
  let next = popper (par_run cells) in
  (* phase 2: replay the loops, consuming cell results in order *)
  let ok = ref true in
  let optimal_means = Hashtbl.create 8 in
  List.iter
    (fun (_, pname) ->
      List.iter
        (fun n ->
          List.iter
            (fun (gc_name, gc) ->
              let mean = Stats.create () in
              let peak = Stats.create () in
              let ctrl = Stats.create () in
              let optimal = Stats.create () in
              List.iter
                (fun _seed ->
                  let m, p, c, opt, bound_ok = next () in
                  Stats.add mean m;
                  Stats.add_int peak p;
                  Stats.add_int ctrl c;
                  if not (Float.is_nan opt) then Stats.add optimal opt;
                  (* the paper's bound: never more than n per process *)
                  if gc = Sim_config.Local && not bound_ok then ok := false)
                seeds;
              if gc = Sim_config.Local then
                Hashtbl.replace optimal_means (pname, n) (Stats.mean optimal);
              Table.add_row t
                [
                  pname;
                  string_of_int n;
                  gc_name;
                  Table.fmt_float (Stats.mean mean);
                  Table.fmt_float (Stats.stddev mean);
                  Table.fmt_float (Stats.mean peak);
                  Table.fmt_float (Stats.mean mean /. float_of_int n);
                  Table.fmt_float ~decimals:0 (Stats.mean ctrl);
                ])
            policies;
          let opt = try Hashtbl.find optimal_means (pname, n) with Not_found -> nan in
          Table.add_row t
            [
              pname;
              string_of_int n;
              "(optimal)";
              Table.fmt_float opt;
              "-";
              "-";
              Table.fmt_float (opt /. float_of_int n);
              "0";
            ];
          Table.add_separator t)
        sizes)
    patterns;
  Table.print t;
  check "RDT-LGC respects the n (n+1 transient) bound in every run" !ok

(* --- E2: space overhead vs system size --------------------------------- *)

let exp_e2 () =
  section "EXP-E2: per-process space overhead vs system size (Section 4.5)"
    "RDT-LGC under a uniform workload as n grows.  The paper's bound is n\n\
     retained checkpoints per process (n+1 while storing a new one); in\n\
     practice the steady state sits far below the bound.";
  let t =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("mean/process", Table.Right);
          ("p95/process", Table.Right);
          ("max/process", Table.Right);
          ("bound n", Table.Right);
          ("bound hit?", Table.Left);
        ]
  in
  let sizes = [ 2; 4; 8; 16 ] in
  (* phase 1: one cell per (n, seed); each returns its sample values in
     the same reverse-accumulated order the sequential loop builds *)
  let cells =
    List.concat_map
      (fun n ->
        List.map
          (fun seed () ->
            let cfg =
              base_config ~n ~seed ~gc:Sim_config.Local
                ~pattern:Workload.Uniform ~duration:60.0
            in
            let run = run_sim cfg in
            let acc = ref [] in
            Array.iter
              (fun series ->
                List.iter (fun v -> acc := v :: !acc) (Series.values series))
              (Runner.retained_series run);
            !acc)
          seeds)
      sizes
  in
  let next = popper (par_run cells) in
  let ok = ref true in
  List.iter
    (fun n ->
      (* prepending each seed's reversed segment reproduces the
         sequential accumulation order exactly *)
      let per_process = ref [] in
      List.iter (fun _seed -> per_process := next () @ !per_process) seeds;
      let values = !per_process in
      let max_v = List.fold_left Float.max 0.0 values in
      if max_v > float_of_int n then ok := false;
      Table.add_row t
        [
          string_of_int n;
          Table.fmt_float (Stats.mean (Stats.of_list values));
          Table.fmt_float (Stats.percentile values ~p:95.0);
          Table.fmt_float ~decimals:0 max_v;
          string_of_int n;
          (if max_v >= float_of_int n then "yes" else "no");
        ])
    sizes;
  Table.print t;
  check "sampled per-process retention never exceeds n" !ok

(* --- E3: optimality in practice ---------------------------------------- *)

let exp_e3 () =
  section "EXP-E3: share of obsolete checkpoints collected (Theorems 4-5)"
    "Sweeps message and checkpoint rates; compares what RDT-LGC collected\n\
     against ground truth (Theorem 1 on the final CCP).  'causal optimum'\n\
     verifies Theorem 5: the retained set equals exactly what causal\n\
     knowledge permits, in every run.";
  let t =
    Table.create
      ~columns:
        [
          ("msg interval", Table.Right);
          ("ckpt interval", Table.Right);
          ("stored", Table.Right);
          ("collected", Table.Right);
          ("obsolete (oracle)", Table.Right);
          ("collected/obsolete", Table.Right);
          ("causal optimum?", Table.Left);
        ]
  in
  let send_means = [ 0.5; 1.0; 2.0 ] in
  let ckpt_means = [ 2.0; 5.0; 10.0 ] in
  (* phase 1: one cell per (rates, seed); sums and conjunctions are
     order-insensitive, so per-seed increments recombine exactly *)
  let cells =
    List.concat_map
      (fun send_mean ->
        List.concat_map
          (fun ckpt_mean ->
            List.map
              (fun seed () ->
                let cfg =
                  {
                    (base_config ~n:6 ~seed ~gc:Sim_config.Local
                       ~pattern:Workload.Uniform ~duration:60.0)
                    with
                    workload =
                      {
                        (base_workload Workload.Uniform) with
                        send_mean_interval = send_mean;
                        basic_ckpt_mean_interval = ckpt_mean;
                      };
                  }
                in
                let run = run_sim cfg in
                let s = Runner.summary run in
                (* the trace-derived CCP contains every checkpoint ever
                   taken, so the oracle's obsolete set already includes
                   the collected ones *)
                let ccp = Runner.ccp run in
                let obsolete = List.length (Oracle.obsolete ccp) in
                (* Theorem 5 check: retained = Theorem-2 set *)
                let n = (Runner.config run).Sim_config.n in
                let snaps =
                  Array.init n (fun pid ->
                      Session.snapshot_of (Runner.middleware run pid))
                in
                let optimal = ref true in
                for pid = 0 to n - 1 do
                  let li = snaps.(pid).Global_gc.live_dv in
                  let causal = Global_gc.theorem1_retained snaps ~me:pid ~li in
                  let retained =
                    Stable_store.retained_indices
                      (Middleware.store (Runner.middleware run pid))
                  in
                  if List.sort compare causal <> List.sort compare retained
                  then optimal := false
                done;
                ( s.Runner.stored_total,
                  s.Runner.eliminated_total,
                  obsolete,
                  !optimal ))
              seeds)
          ckpt_means)
      send_means
  in
  let next = popper (par_run cells) in
  let all_optimal = ref true in
  List.iter
    (fun send_mean ->
      List.iter
        (fun ckpt_mean ->
          let stored = ref 0 and collected = ref 0 and obsolete = ref 0 in
          let optimal = ref true in
          List.iter
            (fun _seed ->
              let st, co, ob, opt = next () in
              stored := !stored + st;
              collected := !collected + co;
              obsolete := !obsolete + ob;
              if not opt then optimal := false)
            seeds;
          if not !optimal then all_optimal := false;
          Table.add_row t
            [
              Table.fmt_float ~decimals:1 send_mean;
              Table.fmt_float ~decimals:1 ckpt_mean;
              string_of_int !stored;
              string_of_int !collected;
              string_of_int !obsolete;
              Table.fmt_ratio (float_of_int !collected) (float_of_int !obsolete);
              (if !optimal then "yes" else "NO");
            ])
        ckpt_means)
    send_means;
  Table.print t;
  Printf.printf
    "\n(the gap to 100%% is exactly the set of obsolete checkpoints whose\n\
     obsolescence is not derivable from causal knowledge — Theorem 5 says\n\
     no asynchronous collector can close it)\n";
  check "every run retained exactly the causal-knowledge optimum" !all_optimal

(* --- E5: forced-checkpoint overhead of the protocols ------------------- *)

let exp_e5 () =
  section "EXP-E5: forced-checkpoint overhead of the checkpointing protocols"
    "Context for 'off-the-shelf RDT protocols': forced checkpoints per\n\
     basic checkpoint under identical workloads (no GC so that non-RDT\n\
     protocols can be included).  CBR > FDI > FDAS is the expected\n\
     ordering among the RDT protocols; BCS is Z-cycle-free only.";
  let t =
    Table.create
      ~columns:
        [
          ("workload", Table.Left);
          ("protocol", Table.Left);
          ("rdt?", Table.Left);
          ("basic", Table.Right);
          ("forced", Table.Right);
          ("forced/basic", Table.Right);
        ]
  in
  let patterns =
    [
      (Workload.Uniform, "uniform");
      (Workload.Ring, "ring");
      (Workload.Client_server { servers = 2 }, "client-server");
    ]
  in
  (* phase 1: one cell per (pattern, protocol, seed) *)
  let cells =
    List.concat_map
      (fun (pattern, _) ->
        List.concat_map
          (fun (p : Protocol.t) ->
            List.map
              (fun seed () ->
                let cfg =
                  {
                    (base_config ~n:6 ~seed ~gc:Sim_config.No_gc ~pattern
                       ~duration:60.0)
                    with
                    protocol = p;
                  }
                in
                let s = Runner.summary (run_sim cfg) in
                (s.Runner.basic_checkpoints, s.Runner.forced_checkpoints))
              seeds)
          Protocol.all)
      patterns
  in
  let next = popper (par_run cells) in
  let ordering_ok = ref true in
  List.iter
    (fun (_, pname) ->
      let forced_of = Hashtbl.create 8 in
      List.iter
        (fun (p : Protocol.t) ->
          let basic = ref 0 and forced = ref 0 in
          List.iter
            (fun _seed ->
              let b, f = next () in
              basic := !basic + b;
              forced := !forced + f)
            seeds;
          Hashtbl.replace forced_of p.Protocol.id !forced;
          Table.add_row t
            [
              pname;
              p.Protocol.id;
              (if p.Protocol.rdt then "yes" else "no");
              string_of_int !basic;
              string_of_int !forced;
              Table.fmt_float
                (float_of_int !forced /. float_of_int (max 1 !basic));
            ])
        Protocol.all;
      let f id = Hashtbl.find forced_of id in
      if not (f "fdas" <= f "fdi" && f "fdi" <= f "cbr") then
        ordering_ok := false;
      Table.add_separator t)
    patterns;
  Table.print t;
  check "FDAS <= FDI <= CBR forced-checkpoint ordering on every workload"
    !ordering_ok

(* --- E7: immediacy ablation -------------------------------------------- *)

let exp_e7 () =
  section "EXP-E7 (ablation): incremental RDT-LGC vs lazy Theorem-2 sweeps"
    "Both collectors use identical causal knowledge (Theorem 2 from the\n\
     process's own DV) and are purely asynchronous; RDT-LGC maintains the\n\
     retained set incrementally via UC/CCB reference counts on every\n\
     event, the lazy variant recomputes it from scratch every PERIOD.\n\
     The executions are byte-identical (same seeds, no control traffic),\n\
     so the gap isolates what the paper's 'collect as soon as the\n\
     condition holds' design buys: the bound n holds *always* instead of\n\
     only at sweep instants.";
  let t =
    Table.create
      ~columns:
        [
          ("collector", Table.Left);
          ("mean retained", Table.Right);
          ("peak retained", Table.Right);
          ("mean/process", Table.Right);
          ("peak > n?", Table.Left);
        ]
  in
  let n = 8 in
  let variants =
    [
      ("rdt-lgc (incremental)", Sim_config.Local);
      ("lazy sweep, period 1", Sim_config.Local_lazy { period = 1.0 });
      ("lazy sweep, period 5", Sim_config.Local_lazy { period = 5.0 });
      ("lazy sweep, period 15", Sim_config.Local_lazy { period = 15.0 });
      ("no-gc", Sim_config.No_gc);
    ]
  in
  (* phase 1: one cell per (variant, seed) *)
  let cells =
    List.concat_map
      (fun (_, gc) ->
        List.map
          (fun seed () ->
            let cfg =
              base_config ~n ~seed ~gc ~pattern:Workload.Uniform
                ~duration:80.0
            in
            let s = Runner.summary (run_sim cfg) in
            let over =
              Array.exists (fun p -> p > n + 1) s.Runner.peak_retained
            in
            ( s.Runner.mean_total_retained,
              s.Runner.peak_retained_global,
              over ))
          seeds)
      variants
  in
  let next = popper (par_run cells) in
  let incremental_ok = ref true in
  List.iter
    (fun (name, gc) ->
      let mean = Stats.create () and peak = Stats.create () in
      let over_bound = ref false in
      List.iter
        (fun _seed ->
          let m, p, over = next () in
          Stats.add mean m;
          Stats.add_int peak p;
          if over then over_bound := true)
        seeds;
      if gc = Sim_config.Local && !over_bound then incremental_ok := false;
      Table.add_row t
        [
          name;
          Table.fmt_float (Stats.mean mean);
          Table.fmt_float (Stats.mean peak);
          Table.fmt_float (Stats.mean mean /. float_of_int n);
          (if !over_bound then "yes" else "no");
        ])
    variants;
  Table.print t;
  check "only the incremental collector holds the n+1 bound at all times"
    !incremental_ok

(* --- E6: recovery sessions and Algorithm 3 ----------------------------- *)

let exp_e6 () =
  section "EXP-E6: rollback sessions (Algorithm 3, global vs causal knowledge)"
    "Crash/recovery runs under RDT-LGC.  After each session the collector\n\
     state is rebuilt by Algorithm 3 — with the LI vector when the\n\
     recovery manager disseminates global knowledge, or from the local DV\n\
     alone.  Safety is re-audited against the post-recovery CCP.";
  let t =
    Table.create
      ~columns:
        [
          ("knowledge", Table.Left);
          ("seed", Table.Right);
          ("sessions", Table.Right);
          ("ckpts rolled back", Table.Right);
          ("retained after", Table.Right);
          ("safe?", Table.Left);
        ]
  in
  let knowledges = [ (`Global, "global (LI)"); (`Causal, "causal (DV)") ] in
  (* phase 1: one cell per (knowledge, seed) *)
  let cells =
    List.concat_map
      (fun (knowledge, _) ->
        List.map
          (fun seed () ->
            let cfg =
              {
                (base_config ~n:5 ~seed ~gc:Sim_config.Local
                   ~pattern:Workload.Uniform ~duration:80.0)
                with
                knowledge;
                faults =
                  [
                    { Sim_config.crash_at = 25.0; pid = 1; repair_after = 3.0 };
                    { Sim_config.crash_at = 55.0; pid = 3; repair_after = 4.0 };
                  ];
              }
            in
            let run = run_sim cfg in
            let s = Runner.summary run in
            let ccp = Runner.ccp run in
            let safe =
              List.for_all
                (fun pid ->
                  let retained =
                    Stable_store.retained_indices
                      (Middleware.store (Runner.middleware run pid))
                  in
                  List.for_all
                    (fun needed -> List.mem needed retained)
                    (Oracle.retained ccp ~pid))
                (List.init 5 Fun.id)
            in
            ( s.Runner.recovery_sessions,
              s.Runner.checkpoints_rolled_back,
              Array.fold_left ( + ) 0 s.Runner.final_retained,
              safe ))
          seeds)
      knowledges
  in
  let next = popper (par_run cells) in
  let all_safe = ref true in
  List.iter
    (fun (_, kname) ->
      List.iter
        (fun seed ->
          let sessions, rolled_back, retained, safe = next () in
          if not safe then all_safe := false;
          Table.add_row t
            [
              kname;
              string_of_int seed;
              string_of_int sessions;
              string_of_int rolled_back;
              string_of_int retained;
              (if safe then "yes" else "NO");
            ])
        seeds)
    knowledges;
  Table.print t;
  check "post-recovery collection is safe in every run" !all_safe

(* --- E8: recovery storms ------------------------------------------------ *)

let exp_e8 () =
  section "EXP-E8: recovery storms — collection under repeated failures"
    "Crash frequency sweep under FDAS + RDT-LGC.  Collection keeps running\n\
     through every session (Algorithm 3 rebuilds the collector after each\n\
     rollback), the storage bound holds throughout, and the rollback\n\
     depth is identical to a run without any collection — obsolete\n\
     checkpoints are, by construction, never recovery-relevant.";
  let t =
    Table.create
      ~columns:
        [
          ("crash period", Table.Right);
          ("knowledge", Table.Left);
          ("sessions", Table.Right);
          ("ckpts rolled back", Table.Right);
          ("mean retained", Table.Right);
          ("= no-gc rollbacks?", Table.Left);
        ]
  in
  let n = 5 in
  let crash_periods = [ 40.0; 20.0; 10.0 ] in
  let knowledges = [ (`Global, "global"); (`Causal, "causal") ] in
  (* phase 1: one cell per (period, knowledge, seed); each runs the
     collected and the no-gc execution back to back *)
  let cells =
    List.concat_map
      (fun crash_period ->
        List.concat_map
          (fun (knowledge, _) ->
            List.map
              (fun seed () ->
                let faults =
                  (* staggered crashes of rotating processes *)
                  List.init
                    (int_of_float (120.0 /. crash_period) - 1)
                    (fun i ->
                      {
                        Sim_config.pid = i mod n;
                        crash_at = crash_period *. float_of_int (i + 1);
                        repair_after = 2.0;
                      })
                in
                let run gc =
                  let cfg =
                    {
                      (base_config ~n ~seed ~gc ~pattern:Workload.Uniform
                         ~duration:120.0)
                      with
                      faults;
                      knowledge;
                    }
                  in
                  run_sim cfg
                in
                let s = Runner.summary (run Sim_config.Local) in
                let s_none = Runner.summary (run Sim_config.No_gc) in
                let bound_ok =
                  Array.for_all (fun p -> p <= n + 1) s.Runner.peak_retained
                in
                ( s.Runner.recovery_sessions,
                  s.Runner.checkpoints_rolled_back,
                  s.Runner.mean_total_retained,
                  bound_ok,
                  s.Runner.checkpoints_rolled_back
                  = s_none.Runner.checkpoints_rolled_back ))
              seeds)
          knowledges)
      crash_periods
  in
  let next = popper (par_run cells) in
  let ok = ref true in
  List.iter
    (fun crash_period ->
      List.iter
        (fun (_, kname) ->
          let sessions = Stats.create ()
          and undone = Stats.create ()
          and retained = Stats.create () in
          let same = ref true in
          List.iter
            (fun _seed ->
              let se, un, re, bound_ok, same_rollback = next () in
              Stats.add_int sessions se;
              Stats.add_int undone un;
              Stats.add retained re;
              if not bound_ok then ok := false;
              if not same_rollback then begin
                same := false;
                ok := false
              end)
            seeds;
          Table.add_row t
            [
              Table.fmt_float ~decimals:0 crash_period;
              kname;
              Table.fmt_float ~decimals:1 (Stats.mean sessions);
              Table.fmt_float ~decimals:1 (Stats.mean undone);
              Table.fmt_float (Stats.mean retained);
              (if !same then "yes" else "NO");
            ])
        knowledges)
    crash_periods;
  Table.print t;
  check
    "bound holds through every storm; rollback depth identical to no-gc runs"
    !ok

let all () =
  let r1 = exp_e1 () in
  let r2 = exp_e2 () in
  let r3 = exp_e3 () in
  let r5 = exp_e5 () in
  let r6 = exp_e6 () in
  let r7 = exp_e7 () in
  let r8 = exp_e8 () in
  r1 && r2 && r3 && r5 && r6 && r7 && r8
