(* Reproduction of the paper's figures (experiments F1-F5 of DESIGN.md).
   Each experiment prints the artifact it regenerates and PASS/FAIL checks
   against what the paper states. *)

open Exp_support
module Ccp = Rdt_ccp.Ccp
module Zigzag = Rdt_ccp.Zigzag
module Rdt_check = Rdt_ccp.Rdt_check
module Consistency = Rdt_ccp.Consistency
module Figures = Rdt_scenarios.Figures
module Script = Rdt_scenarios.Script
module Protocol = Rdt_protocols.Protocol
module Oracle = Rdt_gc.Oracle
module Recovery_line = Rdt_recovery.Recovery_line
module Stable_store = Rdt_storage.Stable_store
module Table = Rdt_metrics.Table

let verdict_name = function
  | Zigzag.Causal_path -> "C-path"
  | Zigzag.Non_causal_zigzag -> "Z-path"
  | Zigzag.Not_a_path -> "not a path"

(* --- F1: Figure 1 — example CCP and path classification --------------- *)

let exp_f1 () =
  section "EXP-F1 (Figure 1): example CCP, C-paths and Z-paths"
    "Classifies the message sequences named in the paper and checks RDT\n\
     with and without message m3 (paper pids p1,p2,p3 are 0,1,2 here).";
  let f = Figures.figure1 () in
  print_endline "the transcribed pattern ([k] = s^k, mX>/>mX = send/receive):";
  Rdt_ccp.Diagram.print f.trace;
  print_newline ();
  let ck pid index : Ccp.ckpt = { pid; index } in
  let t =
    Table.create
      ~columns:
        [
          ("path", Table.Left);
          ("from", Table.Left);
          ("to", Table.Left);
          ("paper", Table.Left);
          ("measured", Table.Left);
        ]
  in
  let row name msgs from_ to_ paper =
    let v = Zigzag.classify_sequence f.ccp ~from_ ~to_ msgs in
    Table.add_row t
      [
        name;
        Format.asprintf "%a" Ccp.pp_ckpt from_;
        Format.asprintf "%a" Ccp.pp_ckpt to_;
        paper;
        verdict_name v;
      ]
  in
  row "[m1,m2]" [ f.m1; f.m2 ] (ck 0 0) (ck 2 1) "C-path";
  row "[m1,m4]" [ f.m1; f.m4 ] (ck 0 0) (ck 2 2) "C-path";
  row "[m5,m4]" [ f.m5; f.m4 ] (ck 0 1) (ck 2 2) "Z-path";
  Table.print t;
  let ok =
    check "RDT holds with m3" (Rdt_check.holds f.ccp)
    && check "RDT fails without m3"
         (not (Rdt_check.holds (Figures.figure1_without_m3 ())))
    && check "without m3: s1_p0 ~~> s2_p2 untracked (paper's example)"
         (let ccp = Figures.figure1_without_m3 () in
          Zigzag.path_exists ccp (ck 0 1) (ck 2 2)
          && not (Ccp.precedes ccp (ck 0 1) (ck 2 2)))
    && check "{v_p0, s1_p1, s1_p2} consistent (paper's example)"
         (Consistency.is_consistent f.ccp [| 2; 1; 1 |])
    && check "{s0_p0, s1_p1, s1_p2} inconsistent (paper's example)"
         (not (Consistency.is_consistent f.ccp [| 0; 1; 1 |]))
  in
  ok

(* --- F2: Figure 2 — useless checkpoints and the domino effect --------- *)

let exp_f2 () =
  section "EXP-F2 (Figure 2): useless checkpoints and the domino effect"
    "The crossing ping-pong pattern without forced checkpoints makes every\n\
     non-initial stable checkpoint useless: one failure rolls both\n\
     processes back to their initial states.  The same interleaving under\n\
     the RDT protocols stays recoverable.";
  let f = Figures.figure2 () in
  let useless = Zigzag.useless f.ccp in
  Printf.printf "uncoordinated run: useless checkpoints = %s\n"
    (String.concat " "
       (List.map (fun c -> Format.asprintf "%a" Ccp.pp_ckpt c) useless));
  let t =
    Table.create
      ~columns:
        [
          ("protocol", Table.Left);
          ("forced ckpts", Table.Right);
          ("useless ckpts", Table.Right);
          ("rollback depth (p1 fails)", Table.Right);
          ("domino?", Table.Left);
        ]
  in
  let ok = ref true in
  (* phase 1: one cell per protocol *)
  let run_protocol p () =
    let s = Figures.figure2_with_protocol p in
    let ccp = Script.ccp s in
    let useless = List.length (Zigzag.useless ccp) in
    let forced = Script.forced_taken s 0 + Script.forced_taken s 1 in
    let bound = [| Ccp.volatile_index ccp 0; Ccp.last_stable ccp 1 |] in
    let line =
      match Consistency.max_consistent ccp ~bound with
      | Some line -> line
      | None -> [| -1; -1 |]
    in
    let depth = Consistency.count_rolled_back ccp line in
    let domino = line.(0) = 0 && line.(1) = 0 in
    (p, forced, useless, depth, domino)
  in
  let results = par_run (List.map run_protocol Protocol.all) in
  List.iter
    (fun ((p : Protocol.t), forced, useless, depth, domino) ->
      Table.add_row t
        [
          p.Protocol.id;
          string_of_int forced;
          string_of_int useless;
          string_of_int depth;
          (if domino then "yes" else "no");
        ])
    results;
  let results =
    List.map (fun (p, _, useless, _, domino) -> (p, useless, domino)) results
  in
  Table.print t;
  List.iter
    (fun (p, useless, domino) ->
      if p.Protocol.id = "none" then
        ok :=
          check "uncoordinated: domino to the initial state" domino && !ok
      else
        ok :=
          check (p.Protocol.id ^ ": no useless checkpoints") (useless = 0)
          && check (p.Protocol.id ^ ": no domino") (not domino)
          && !ok)
    results;
  !ok

(* --- F3: recovery-line determination (Figure 3's role) ---------------- *)

let exp_f3 () =
  section
    "EXP-F3 (Figure 3): recovery-line determination and obsolete checkpoints"
    "Figure 3's exact messages are not specified in the paper; this runs\n\
     Lemma 1 on a 4-process CCP in its spirit, cross-checks it against\n\
     Definition 5 (maximal consistent global checkpoint) for every faulty\n\
     set, and lists the obsolete checkpoints per Theorem 1.";
  let ccp = Figures.recovery_ccp () in
  let n = Ccp.n ccp in
  let t =
    Table.create
      ~columns:
        [
          ("faulty set", Table.Left);
          ("recovery line (Lemma 1)", Table.Left);
          ("= Definition 5?", Table.Left);
          ("ckpts rolled back", Table.Right);
        ]
  in
  let ok = ref true in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
      let s = subsets rest in
      s @ List.map (fun l -> x :: l) s
  in
  List.iter
    (fun faulty ->
      if faulty <> [] then begin
        let l1 = Recovery_line.lemma1 ccp ~faulty in
        let l2 = Recovery_line.by_max_consistent ccp ~faulty in
        let agree = l1 = l2 in
        if not agree then ok := false;
        Table.add_row t
          [
            fmt_ints faulty;
            fmt_int_array l1;
            (if agree then "yes" else "NO");
            string_of_int (Consistency.count_rolled_back ccp l1);
          ]
      end)
    (subsets (List.init n Fun.id));
  Table.print t;
  let obsolete = Oracle.obsolete ccp in
  Printf.printf "\nTheorem 1 obsolete checkpoints: %s\n"
    (String.concat " "
       (List.map (fun c -> Format.asprintf "%a" Ccp.pp_ckpt c) obsolete));
  let last_kept =
    List.for_all
      (fun pid ->
        not
          (List.exists
             (fun (c : Ccp.ckpt) ->
               c.pid = pid && c.index = Ccp.last_stable ccp pid)
             obsolete))
      (List.init n Fun.id)
  in
  check "Lemma 1 agrees with Definition 5 on every faulty set" !ok
  && check "the last stable checkpoint of each process is never obsolete"
       last_kept
  && check "the pattern is RD-trackable" (Rdt_check.holds ccp)

(* --- F4: Figure 4 — RDT-LGC execution --------------------------------- *)

let exp_f4 () =
  section "EXP-F4 (Figure 4): RDT-LGC execution, DV and UC evolution"
    "Replays the scripted 3-process execution through real middleware with\n\
     RDT-LGC attached, and checks the paper's final state: s2_p2, s1_p3\n\
     and s2_p3 eliminated (paper numbering); s1_p2 obsolete but retained\n\
     because p2 lacks causal knowledge of p3's later checkpoints.";
  let s = Figures.figure4 () in
  let t =
    Table.create
      ~columns:
        [
          ("process", Table.Left);
          ("final DV", Table.Left);
          ("final UC", Table.Left);
          ("retained", Table.Left);
          ("paper", Table.Left);
        ]
  in
  let expectations =
    [
      (0, "(1,0,0)", "(0,*,*)", "{0}");
      (1, "(1,4,2)", "(0,3,1)", "{0,1,3}");
      (2, "(1,4,4)", "(0,3,3)", "{0,3}");
    ]
  in
  let ok = ref true in
  List.iter
    (fun (pid, e_dv, e_uc, e_ret) ->
      let dv =
        "("
        ^ String.concat ","
            (Array.to_list (Array.map string_of_int (Script.dv s pid)))
        ^ ")"
      in
      let uc = fmt_uc (Script.uc s pid) in
      let ret = fmt_ints (Script.retained s pid) in
      let match_ = dv = e_dv && uc = e_uc && ret = e_ret in
      if not match_ then ok := false;
      Table.add_row t
        [
          Printf.sprintf "p%d (paper p%d)" pid (pid + 1);
          dv;
          uc;
          ret;
          Printf.sprintf "%s %s %s" e_dv e_uc e_ret;
        ])
    expectations;
  Table.print t;
  let ccp = Script.ccp s in
  check "final DV/UC/retained match the paper" !ok
  && check "exactly the paper's three checkpoints were eliminated"
       (let eliminated =
          List.fold_left
            (fun acc pid ->
              acc
              + (Stable_store.stats (Script.store s pid))
                  .Stable_store.eliminated_total)
            0 [ 0; 1; 2 ]
        in
        eliminated = 3)
  && check "s1_p2 (paper) is obsolete yet retained — the causal-knowledge gap"
       (Oracle.is_obsolete ccp { Ccp.pid = 1; index = 1 }
       && Stable_store.mem (Script.store s 1) ~index:1)
  && check "no forced checkpoints disturbed the figure"
       (List.for_all (fun pid -> Script.forced_taken s pid = 0) [ 0; 1; 2 ])

(* --- F5: Figure 5 — worst-case space overhead -------------------------- *)

let exp_f5 () =
  section "EXP-F5 (Figure 5): worst-case scenario — the n / n(n+1) bounds"
    "Drives the worst-case pattern for growing n: every process ends up\n\
     retaining exactly n checkpoints; taking one more peaks at n+1 per\n\
     process (n(n+1) globally) before settling back to n^2 in total.";
  let t =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("retained/process", Table.Right);
          ("global", Table.Right);
          ("peak/process", Table.Right);
          ("global peak", Table.Right);
          ("n(n+1) bound", Table.Right);
        ]
  in
  let sizes = [ 2; 3; 4; 6; 8; 12; 16 ] in
  (* phase 1: one cell per n *)
  let cells =
    List.map
      (fun n () ->
        let s = Figures.worst_case ~n in
        (* trigger the transient: all processes take one more checkpoint *)
        for pid = 0 to n - 1 do
          Script.checkpoint s pid
        done;
        let counts =
          List.init n (fun pid -> List.length (Script.retained s pid))
        in
        let peaks =
          List.init n (fun pid ->
              (Stable_store.stats (Script.store s pid)).Stable_store.peak_count)
        in
        (counts, peaks))
      sizes
  in
  let next = popper (par_run cells) in
  let ok = ref true in
  List.iter
    (fun n ->
      let counts, peaks = next () in
      let global = List.fold_left ( + ) 0 counts in
      let global_peak = List.fold_left ( + ) 0 peaks in
      if
        List.exists (fun c -> c <> n) counts
        || List.exists (fun p -> p <> n + 1) peaks
      then ok := false;
      Table.add_row t
        [
          string_of_int n;
          string_of_int (List.hd counts);
          string_of_int global;
          string_of_int (List.hd peaks);
          string_of_int global_peak;
          string_of_int (n * (n + 1));
        ])
    sizes;
  Table.print t;
  check "every process retains exactly n, peaks at n+1 (global n(n+1))" !ok

let all () =
  (* explicit sequencing: list elements would evaluate right-to-left *)
  let r1 = exp_f1 () in
  let r2 = exp_f2 () in
  let r3 = exp_f3 () in
  let r4 = exp_f4 () in
  let r5 = exp_f5 () in
  r1 && r2 && r3 && r4 && r5
