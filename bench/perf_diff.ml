(* Perf-regression diff over two BENCH_micro.json files (the committed
   baseline vs a fresh run) — the `make perf` backend.

   The reader is deliberately specialized to the flat one-benchmark-per-
   line layout Micro.write_json emits (rdtgc-bench-micro/1 through /3;
   schema 1 files have no allocation fields and only /3 carries the
   whole-run events_per_sec / speedup_vs_seq fields): this keeps the
   harness free of a JSON dependency while staying robust to field
   reordering within a line.

   Policy:
   - *structural* mismatches are fatal (exit 1): a schema-version change
     or a different benchmark group set means the two files are not
     comparable at all — a silent pass here is how a renamed or dropped
     group escapes regression tracking, so the baseline must be
     regenerated deliberately, in the same commit as the change;
   - *measurements* are non-fatal, so CI can run on every push without
     flaking on shared-runner noise:
     - WARN when ns_per_run regresses by more than 20%;
     - WARN on any steady-state allocation growth beyond jitter
       (allocs_per_run more than [alloc_jitter] words above baseline);
     - WARN when a whole-run scaling row that used to beat the
       sequential engine (speedup_vs_seq >= 1) falls below parity —
       sharding stopped paying off (the hard version of this check is
       the CI `mt-gate` command, which races fresh runs);
     - improvements are reported as INFO lines so the trajectory is
       visible in the CI log. *)

let ns_regression_threshold = 0.20
let alloc_jitter = 8.0 (* words/run; OLS slope noise on a quiet run *)

type bench = {
  name : string;
  ns : float option;
  allocs : float option;
  ev_s : float option;  (* /3 whole-run rows only *)
  speedup : float option;  (* /3 whole-run rows only *)
}

(* --- minimal reader for our own writer's output ------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* [string_field line {|"name"|}] / [number_field line {|"ns_per_run"|}]:
   pull a field out of one benchmark line; numbers may be [null]. *)
let after_key line key =
  let rec find i =
    if i + String.length key > String.length line then None
    else if String.sub line i (String.length key) = key then
      (* skip past the key, the colon and any blanks *)
      let j = ref (i + String.length key) in
      while
        !j < String.length line && (line.[!j] = ':' || line.[!j] = ' ')
      do
        incr j
      done;
      Some !j
    else find (i + 1)
  in
  find 0

let string_field line key =
  match after_key line key with
  | Some j when j < String.length line && line.[j] = '"' -> (
    match String.index_from_opt line (j + 1) '"' with
    | Some k -> Some (String.sub line (j + 1) (k - j - 1))
    | None -> None)
  | Some _ | None -> None

let number_field line key =
  match after_key line key with
  | None -> None
  | Some j ->
    let k = ref j in
    while
      !k < String.length line
      && (match line.[!k] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr k
    done;
    if !k = j then None (* null or malformed *)
    else float_of_string_opt (String.sub line j (!k - j))

let parse path =
  String.split_on_char '\n' (read_file path)
  |> List.filter_map (fun line ->
         match string_field line "\"name\"" with
         | Some name ->
           Some
             {
               name;
               ns = number_field line "\"ns_per_run\"";
               allocs = number_field line "\"allocs_per_run\"";
               ev_s = number_field line "\"events_per_sec\"";
               speedup = number_field line "\"speedup_vs_seq\"";
             }
         | None -> None)

let schema_of path =
  String.split_on_char '\n' (read_file path)
  |> List.find_map (fun line -> string_field line "\"schema\"")

(* the group of a benchmark is its name up to the first '/': the JSON's
   coarse table of contents ("engine", "engine-mt", "ccp", ...) *)
let group_of name =
  match String.index_opt name '/' with
  | Some i -> String.sub name 0 i
  | None -> name

let groups_of benches =
  List.sort_uniq compare (List.map (fun b -> group_of b.name) benches)

(* --- comparison -------------------------------------------------------- *)

let pct_change ~from ~to_ = (to_ -. from) /. from *. 100.0

let run ~baseline ~current =
  let base = parse baseline and cur = parse current in
  if base = [] then
    Printf.printf "perf-diff: no benchmarks in baseline %s (nothing to do)\n"
      baseline;
  (* structural comparability gate — fatal, unlike the measurement diffs
     below: schema or group-set drift means the baseline must be
     regenerated in the same commit as the change that caused it *)
  let fatal = ref 0 in
  let bs = schema_of baseline and cs = schema_of current in
  if bs <> cs then begin
    incr fatal;
    let show = function Some s -> s | None -> "(missing)" in
    Printf.printf "ERROR schema mismatch: baseline %s, current %s\n" (show bs)
      (show cs)
  end;
  let bg = groups_of base and cg = groups_of cur in
  if bg <> cg then begin
    incr fatal;
    let show gs = String.concat ", " gs in
    Printf.printf
      "ERROR benchmark group set changed: baseline {%s}, current {%s}\n"
      (show bg) (show cg);
    List.iter
      (fun g ->
        if not (List.mem g cg) then
          Printf.printf "  group %S disappeared from the current run\n" g)
      bg;
    List.iter
      (fun g ->
        if not (List.mem g bg) then
          Printf.printf
            "  group %S is new — regenerate and commit the baseline\n" g)
      cg
  end;
  let warnings = ref 0 in
  let missing = ref 0 in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> c.name = b.name) cur with
      | None -> incr missing
      | Some c ->
        (match (b.ns, c.ns) with
        | Some bn, Some cn when bn > 0.0 ->
          let change = pct_change ~from:bn ~to_:cn in
          if change > ns_regression_threshold *. 100.0 then begin
            incr warnings;
            Printf.printf
              "WARN %-42s ns/run %+.1f%% (%.1f -> %.1f)\n" b.name change bn cn
          end
          else if change < -.(ns_regression_threshold *. 100.0) then
            Printf.printf
              "INFO %-42s ns/run %+.1f%% (%.1f -> %.1f)\n" b.name change bn cn
        | _ -> ());
        (match (b.allocs, c.allocs) with
        | Some ba, Some ca when ca > ba +. alloc_jitter ->
          incr warnings;
          Printf.printf
            "WARN %-42s allocation growth: %.1f -> %.1f words/run\n" b.name ba
            ca
        | _ -> ());
        (match (b.speedup, c.speedup) with
        | Some bs, Some cs when bs >= 1.0 && cs < 1.0 ->
          incr warnings;
          Printf.printf
            "WARN %-42s sharding fell below parity: speedup %.2fx -> %.2fx\n"
            b.name bs cs
        | Some bs, Some cs when cs > bs *. 1.1 ->
          Printf.printf "INFO %-42s speedup %.2fx -> %.2fx\n" b.name bs cs
        | _ -> ());
        (match (b.ev_s, c.ev_s) with
        | Some be, Some ce when be > 0.0 && ce < be *. (1.0 -. ns_regression_threshold) ->
          (* already implied by the ns WARN for the same row, so INFO *)
          Printf.printf
            "INFO %-42s throughput: %.0f -> %.0f events/s\n" b.name be ce
        | _ -> ()))
    base;
  if !missing > 0 then
    Printf.printf
      "perf-diff: %d baseline benchmark(s) absent from the current run\n"
      !missing;
  if !warnings = 0 then
    Printf.printf "perf-diff: no regressions vs %s\n" baseline
  else
    Printf.printf
      "perf-diff: %d warning(s) vs %s (>%.0f%% ns regression or >%.0f \
       words/run allocation growth)\n"
      !warnings baseline
      (ns_regression_threshold *. 100.0)
      alloc_jitter;
  if !fatal > 0 then begin
    Printf.printf
      "perf-diff: FAILED — %d structural mismatch(es); regenerate the \
       baseline (`make bench-json` and commit BENCH_micro.json) alongside \
       the change\n"
      !fatal;
    exit 1
  end
