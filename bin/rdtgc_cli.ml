(* rdtgc — command-line front end.

   Subcommands:
     run       simulate a checkpointed system and report GC behaviour
     analyze   run a simulation and analyze its CCP (RDT, obsolete set)
     figure4   replay the paper's Figure 4 execution step by step
     protocols list the available checkpointing protocols *)

open Cmdliner
module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config
module Workload = Rdt_workload.Workload
module Protocol = Rdt_protocols.Protocol
module Series = Rdt_metrics.Series

(* --- shared argument definitions -------------------------------------- *)

let n_arg =
  Arg.(value & opt int 4 & info [ "n"; "processes" ] ~docv:"N" ~doc:"Number of processes.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed (runs are deterministic given the seed).")

let duration_arg =
  Arg.(value & opt float 100.0 & info [ "duration" ] ~docv:"T" ~doc:"Virtual duration of the run.")

let protocol_conv =
  let parse s =
    match Protocol.by_id s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown protocol %S (try: %s)" s
             (String.concat ", " (List.map (fun p -> p.Protocol.id) Protocol.all))))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf p.Protocol.id)

let protocol_arg =
  Arg.(value & opt protocol_conv Protocol.fdas
       & info [ "protocol" ] ~docv:"PROTO" ~doc:"Checkpointing protocol: fdas, fdi, bcs, cbr, cas, casbr or none.")

let gc_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "none" ] -> Ok Sim_config.No_gc
    | [ "rdt-lgc" ] | [ "local" ] -> Ok Sim_config.Local
    | [ "lazy"; p ] -> Ok (Sim_config.Local_lazy { period = float_of_string p })
    | [ "coordinated"; p ] -> Ok (Sim_config.Coordinated { period = float_of_string p })
    | [ "simple"; p ] -> Ok (Sim_config.Simple { period = float_of_string p })
    | [ "oracle"; p ] -> Ok (Sim_config.Oracle_periodic { period = float_of_string p })
    | _ ->
      Error
        (`Msg
          "expected none, rdt-lgc, lazy:<period>, coordinated:<period>, \
           simple:<period> or oracle:<period>")
  in
  Arg.conv
    ( (fun s -> try parse s with Failure _ -> Error (`Msg "bad period")),
      fun ppf gc -> Format.pp_print_string ppf (Sim_config.gc_policy_name gc) )

let gc_arg =
  Arg.(value & opt gc_conv Sim_config.Local
       & info [ "gc" ] ~docv:"GC" ~doc:"Garbage collector: none, rdt-lgc, lazy:P, coordinated:P, simple:P, oracle:P.")

let pattern_conv =
  let parse s =
    match Workload.pattern_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg "expected uniform, ring, pipeline, broadcast or client-server:<k>")
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Workload.pattern_name p))

let pattern_arg =
  Arg.(value & opt pattern_conv Workload.Uniform
       & info [ "pattern" ] ~docv:"PATTERN" ~doc:"Communication pattern.")

let send_interval_arg =
  Arg.(value & opt float 1.0 & info [ "send-interval" ] ~docv:"T" ~doc:"Mean time between spontaneous sends.")

let ckpt_interval_arg =
  Arg.(value & opt float 5.0 & info [ "ckpt-interval" ] ~docv:"T" ~doc:"Mean time between basic checkpoints.")

let reply_arg =
  Arg.(value & opt float 0.3 & info [ "reply-probability" ] ~docv:"P" ~doc:"Probability a receive triggers a reply.")

let loss_arg =
  Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc:"Message loss probability.")

let fifo_arg =
  Arg.(value & flag & info [ "fifo" ] ~doc:"FIFO channels (default: reordering allowed).")

let crash_conv =
  (* PID@TIME+REPAIR, e.g. 2@40+5 *)
  let parse s =
    try
      Scanf.sscanf s "%d@%f+%f" (fun pid crash_at repair_after ->
          Ok { Sim_config.pid; crash_at; repair_after })
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      Error (`Msg "expected PID@TIME+REPAIR, e.g. 2@40+5")
  in
  Arg.conv
    ( parse,
      fun ppf f ->
        Format.fprintf ppf "%d@%g+%g" f.Sim_config.pid f.Sim_config.crash_at
          f.Sim_config.repair_after )

let crash_arg =
  Arg.(value & opt_all crash_conv []
       & info [ "crash" ] ~docv:"PID@TIME+REPAIR" ~doc:"Inject a crash (repeatable).")

let knowledge_conv =
  Arg.conv
    ( (function
       | "global" -> Ok `Global
       | "causal" -> Ok `Causal
       | _ -> Error (`Msg "expected global or causal")),
      fun ppf k ->
        Format.pp_print_string ppf
          (match k with `Global -> "global" | `Causal -> "causal") )

let knowledge_arg =
  Arg.(value & opt knowledge_conv `Global
       & info [ "knowledge" ] ~docv:"MODE" ~doc:"Recovery-session knowledge: global (LI vector) or causal (DV only).")

let series_arg =
  Arg.(value & flag & info [ "series" ] ~doc:"Print the retained-checkpoints time series.")

let store_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "store-dir" ] ~docv:"DIR"
           ~doc:"Persist checkpoints in a log-structured on-disk store under \
                 \\$(docv)/p<pid> (default: in-memory stable storage). The \
                 directory must be fresh; inspect it afterwards with \
                 'rdtgc store-stats \\$(docv)'.")

let ckpt_bytes_arg =
  Arg.(value & opt int 1
       & info [ "ckpt-bytes" ] ~docv:"B"
           ~doc:"Synthetic size of one checkpoint payload (bytes).")

let shards_arg =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"K"
           ~doc:"Run the simulation engine on $(docv) domains (conservative \
                 time-window synchronization). Results are identical for \
                 every value — only wall-clock time changes. Requires a \
                 positive network minimum delay when > 1.")

let no_autotune_arg =
  Arg.(value & flag
       & info [ "no-autotune" ]
           ~doc:"Disable the engine's window autotuner (asymmetric per-shard \
                 window boundaries and hardware-aware dispatch); every round \
                 then uses the symmetric lookahead window on a full domain \
                 team. An A/B knob for benchmarking — results are identical \
                 either way.")

let build_config n seed duration protocol gc pattern send_interval
    ckpt_interval reply loss fifo faults knowledge store_dir ckpt_bytes shards
    no_autotune =
  {
    Sim_config.n;
    seed;
    duration;
    protocol;
    gc;
    faults;
    knowledge;
    workload =
      {
        Workload.pattern;
        send_mean_interval = send_interval;
        basic_ckpt_mean_interval = ckpt_interval;
        reply_probability = reply;
      };
    net = { Rdt_sim.Network.default with loss_probability = loss; fifo };
    sample_interval = Float.max 1.0 (duration /. 50.0);
    ckpt_bytes;
    store =
      (match store_dir with
      | None -> Sim_config.Memory
      | Some dir ->
        Sim_config.Durable
          { dir; config = Rdt_store.Log_store.default_config });
    shards;
    autotune = not no_autotune;
  }

let config_term =
  Term.(
    const build_config $ n_arg $ seed_arg $ duration_arg $ protocol_arg
    $ gc_arg $ pattern_arg $ send_interval_arg $ ckpt_interval_arg $ reply_arg
    $ loss_arg $ fifo_arg $ crash_arg $ knowledge_arg $ store_dir_arg
    $ ckpt_bytes_arg $ shards_arg $ no_autotune_arg)

(* --- run --------------------------------------------------------------- *)

let do_run cfg series =
  Sim_config.validate cfg;
  let t = Runner.create cfg in
  Runner.run t;
  Runner.sync_stores t;
  Format.printf "%a@." Runner.pp_summary (Runner.summary t);
  List.iter
    (fun r -> Format.printf "%a@." Rdt_recovery.Session.pp_report r)
    (Runner.recoveries t);
  if series then begin
    Format.printf "@.%a@." Series.pp (Runner.total_retained_series t);
    if Series.length (Runner.optimal_retained_series t) > 0 then
      Format.printf "%a@." Series.pp (Runner.optimal_retained_series t)
  end;
  Runner.close_stores t

let run_cmd =
  let doc = "Simulate a checkpointed distributed system with garbage collection." in
  Cmd.v (Cmd.info "run" ~doc) Term.(const do_run $ config_term $ series_arg)

(* --- analyze ------------------------------------------------------------ *)

let analyze_trace trace retained_of =
  let ccp = Rdt_ccp.Ccp.of_trace trace in
  Format.printf "%a@.@." Rdt_ccp.Ccp.pp ccp;
  let events = List.length (Rdt_ccp.Trace.all_events trace) in
  if events <= 72 then begin
    Rdt_ccp.Diagram.print trace;
    print_newline ()
  end;
  let violations = Rdt_ccp.Rdt_check.violations ~limit:5 ccp in
  Format.printf "RD-trackable: %b@." (violations = []);
  List.iter
    (fun v -> Format.printf "  violation: %a@." Rdt_ccp.Rdt_check.pp_violation v)
    violations;
  let useless = Rdt_ccp.Zigzag.useless ccp in
  Format.printf "useless checkpoints: %d@." (List.length useless);
  if violations = [] then begin
    let obsolete = Rdt_gc.Oracle.obsolete ccp in
    Format.printf "obsolete stable checkpoints (Theorem 1): %d@."
      (List.length obsolete);
    for pid = 0 to Rdt_ccp.Ccp.n ccp - 1 do
      let oracle_set =
        String.concat ","
          (List.map string_of_int (Rdt_gc.Oracle.retained ccp ~pid))
      in
      match retained_of pid with
      | Some retained ->
        Format.printf "  p%d retains {%s}; oracle would retain {%s}@." pid
          (String.concat "," (List.map string_of_int retained))
          oracle_set
      | None -> Format.printf "  p%d: oracle would retain {%s}@." pid oracle_set
    done
  end

let save_arg =
  Arg.(value & opt (some string) None
       & info [ "save" ] ~docv:"FILE" ~doc:"Save the execution trace to FILE (reload with 'rdtgc inspect').")

let do_analyze cfg save =
  Sim_config.validate cfg;
  let t = Runner.create cfg in
  Runner.run t;
  (match save with
  | Some path ->
    Rdt_ccp.Trace.save (Runner.trace t) path;
    Format.printf "trace saved to %s@." path
  | None -> ());
  analyze_trace (Runner.trace t) (fun pid ->
      Some
        (Rdt_storage.Stable_store.retained_indices
           (Rdt_protocols.Middleware.store (Runner.middleware t pid))))

let analyze_cmd =
  let doc = "Run a simulation and analyze the resulting checkpoint pattern." in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const do_analyze $ config_term $ save_arg)

(* --- inspect ------------------------------------------------------------- *)

let do_inspect path =
  let trace = Rdt_ccp.Trace.load path in
  analyze_trace trace (fun _ -> None)

let inspect_cmd =
  let doc = "Analyze a previously saved execution trace." in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(const do_inspect $ file_arg)

(* --- sweep --------------------------------------------------------------- *)

let seeds_arg =
  Arg.(value & opt int 3
       & info [ "seeds" ] ~docv:"K" ~doc:"Number of seeds to average over.")

let do_sweep cfg seeds =
  Sim_config.validate cfg;
  let module Table = Rdt_metrics.Table in
  let module Stats = Rdt_metrics.Stats in
  let collectors =
    [
      ("no-gc", Sim_config.No_gc);
      ("simple:5", Sim_config.Simple { period = 5.0 });
      ("coordinated:5", Sim_config.Coordinated { period = 5.0 });
      ("lazy:5", Sim_config.Local_lazy { period = 5.0 });
      ("rdt-lgc", Sim_config.Local);
      ("oracle:2", Sim_config.Oracle_periodic { period = 2.0 });
    ]
  in
  let table =
    Table.create
      ~columns:
        [
          ("collector", Table.Left);
          ("mean retained", Table.Right);
          ("peak retained", Table.Right);
          ("collected", Table.Right);
          ("ctrl msgs", Table.Right);
        ]
  in
  List.iter
    (fun (name, gc) ->
      let mean = Stats.create ()
      and peak = Stats.create ()
      and collected = Stats.create ()
      and ctrl = Stats.create () in
      for k = 0 to seeds - 1 do
        let t = Runner.create { cfg with gc; seed = cfg.seed + k } in
        Runner.run t;
        let s = Runner.summary t in
        Stats.add mean s.Runner.mean_total_retained;
        Stats.add_int peak s.Runner.peak_retained_global;
        Stats.add_int collected s.Runner.eliminated_total;
        Stats.add_int ctrl s.Runner.control_messages
      done;
      Table.add_row table
        [
          name;
          Table.fmt_float (Stats.mean mean);
          Table.fmt_float (Stats.mean peak);
          Table.fmt_float ~decimals:0 (Stats.mean collected);
          Table.fmt_float ~decimals:0 (Stats.mean ctrl);
        ])
    collectors;
  Table.print table

let sweep_cmd =
  let doc =
    "Run the same workload under every garbage collector and compare \
     storage footprints (the --gc flag is ignored)."
  in
  Cmd.v (Cmd.info "sweep" ~doc) Term.(const do_sweep $ config_term $ seeds_arg)

(* --- store-stats -------------------------------------------------------- *)

let do_store_stats dir =
  let module Log_store = Rdt_store.Log_store in
  let module Table = Rdt_metrics.Table in
  let pids =
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           match int_of_string_opt (String.sub name 1 (String.length name - 1))
           with
           | Some pid
             when String.length name > 1
                  && name.[0] = 'p'
                  && Sys.is_directory (Filename.concat dir name) ->
             Some pid
           | _ | (exception Invalid_argument _) -> None)
    |> List.sort compare
  in
  if pids = [] then begin
    Format.eprintf "no p<pid> store directories under %s@." dir;
    exit 1
  end;
  let table =
    Table.create
      ~columns:
        [
          ("process", Table.Left);
          ("segments", Table.Right);
          ("live ckpts", Table.Right);
          ("live bytes", Table.Right);
          ("dead bytes", Table.Right);
          ("disk bytes", Table.Right);
          ("appended", Table.Right);
          ("compactions", Table.Right);
          ("reclaimed", Table.Right);
        ]
  in
  let tot = ref None in
  List.iter
    (fun pid ->
      let ls =
        Log_store.create ~pid ~dir:(Filename.concat dir (Printf.sprintf "p%d" pid)) ()
      in
      let r = Log_store.recovery ls in
      if r.Log_store.records_dropped > 0 || r.Log_store.torn_bytes > 0 then
        Format.eprintf "p%d: scan dropped %d corrupt record(s), %d torn byte(s)@."
          pid r.Log_store.records_dropped r.Log_store.torn_bytes;
      let s = Log_store.stats ls in
      Log_store.close ls;
      Table.add_row table
        [
          Printf.sprintf "p%d" pid;
          string_of_int s.Log_store.segments;
          string_of_int s.Log_store.live_records;
          string_of_int s.Log_store.live_bytes;
          string_of_int s.Log_store.dead_bytes;
          string_of_int s.Log_store.disk_bytes;
          string_of_int s.Log_store.appended_records;
          string_of_int s.Log_store.compactions;
          string_of_int s.Log_store.bytes_reclaimed;
        ];
      tot :=
        Some
          (match !tot with
          | None -> s
          | Some (a : Log_store.stats) ->
            {
              a with
              Log_store.segments = a.Log_store.segments + s.Log_store.segments;
              live_records = a.Log_store.live_records + s.Log_store.live_records;
              live_bytes = a.Log_store.live_bytes + s.Log_store.live_bytes;
              dead_bytes = a.Log_store.dead_bytes + s.Log_store.dead_bytes;
              disk_bytes = a.Log_store.disk_bytes + s.Log_store.disk_bytes;
              appended_records =
                a.Log_store.appended_records + s.Log_store.appended_records;
              compactions = a.Log_store.compactions + s.Log_store.compactions;
              bytes_reclaimed =
                a.Log_store.bytes_reclaimed + s.Log_store.bytes_reclaimed;
            }))
    pids;
  (match !tot with
  | Some s when List.length pids > 1 ->
    Table.add_row table
      [
        "total";
        string_of_int s.Log_store.segments;
        string_of_int s.Log_store.live_records;
        string_of_int s.Log_store.live_bytes;
        string_of_int s.Log_store.dead_bytes;
        string_of_int s.Log_store.disk_bytes;
        string_of_int s.Log_store.appended_records;
        string_of_int s.Log_store.compactions;
        string_of_int s.Log_store.bytes_reclaimed;
      ]
  | _ -> ());
  Table.print table

let store_stats_cmd =
  let doc =
    "Inspect a durable checkpoint store directory (as written by 'rdtgc run \
     --store-dir'): per-process segment counts, live/dead bytes and \
     compaction work."
  in
  let dir_arg = Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR") in
  Cmd.v (Cmd.info "store-stats" ~doc) Term.(const do_store_stats $ dir_arg)

(* --- figure4 ------------------------------------------------------------ *)

let do_figure4 () =
  let module Script = Rdt_scenarios.Script in
  let s = Rdt_scenarios.Figures.figure4 () in
  Format.printf "Figure 4 final state (paper pids p1,p2,p3 = 0,1,2):@.";
  for pid = 0 to 2 do
    Format.printf "  p%d: DV=(%s) UC=(%s) retained={%s}@." pid
      (String.concat ","
         (Array.to_list (Array.map string_of_int (Script.dv s pid))))
      (String.concat ","
         (Array.to_list
            (Array.map
               (function None -> "*" | Some i -> string_of_int i)
               (Script.uc s pid))))
      (String.concat "," (List.map string_of_int (Script.retained s pid)))
  done;
  Format.printf
    "(run `dune exec examples/paper_trace.exe` for the step-by-step replay)@."

let figure4_cmd =
  let doc = "Replay the paper's Figure 4 reference execution of RDT-LGC." in
  Cmd.v (Cmd.info "figure4" ~doc) Term.(const do_figure4 $ const ())

(* --- protocols ----------------------------------------------------------- *)

let do_protocols () =
  List.iter
    (fun p ->
      Printf.printf "%-6s %s\n" p.Protocol.id
        (if p.Protocol.rdt then "guarantees RDT"
         else if p.Protocol.id = "bcs" then
           "Z-cycle-free only (no useless checkpoints, but not RDT)"
         else "no guarantee (domino effect possible)"))
    Protocol.all

let protocols_cmd =
  let doc = "List the available communication-induced checkpointing protocols." in
  Cmd.v (Cmd.info "protocols" ~doc) Term.(const do_protocols $ const ())

(* --- fuzz ---------------------------------------------------------------- *)

let do_fuzz seed runs max_procs shrink corpus mutate_lgc replay quiet shards =
  let log = if quiet then fun _ -> () else print_endline in
  match replay with
  | Some file -> begin
    (* replay one saved scenario and report its verdict *)
    match Rdt_verify.Scenario.load file with
    | Error e ->
      Printf.eprintf "cannot load %s: %s\n" file e;
      exit 1
    | Ok sc ->
      let r = Rdt_verify.Harness.run ~mutate_lgc sc in
      Format.printf "%a@." Rdt_verify.Scenario.pp sc;
      (match r.Rdt_verify.Harness.violations with
      | [] -> print_endline "ok"
      | vs ->
        List.iter
          (fun v -> Format.printf "%a@." Rdt_verify.Oracles.pp_violation v)
          vs;
        exit 1)
  end
  | None ->
    let report =
      Rdt_verify.Fuzz.campaign ~mutate_lgc ~shrink ?corpus ~log ~shards ~seed
        ~runs ~max_procs ()
    in
    if mutate_lgc then begin
      (* self-check: the deliberately broken collector must be caught *)
      if Rdt_verify.Fuzz.passed report then begin
        print_endline
          "self-check FAILED: over-collecting mutant escaped every oracle";
        exit 1
      end
      else print_endline "self-check ok: mutant caught"
    end
    else if not (Rdt_verify.Fuzz.passed report) then exit 1

let fuzz_cmd =
  let doc =
    "Differential simulation fuzzing: generate random scenarios from a seed, \
     run them through the protocols, RDT-LGC and the durable store, and \
     check every step against the paper's theorem oracles.  Failures are \
     delta-debugged to minimal reproducers."
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Root seed; every run derives a sub-seed from it.")
  in
  let runs_arg =
    Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N"
           ~doc:"Number of generated scenarios.")
  in
  let max_procs_arg =
    Arg.(value & opt int 6 & info [ "max-procs" ] ~docv:"N"
           ~doc:"Upper bound on the process count of generated scenarios.")
  in
  let shrink_arg =
    Arg.(value & opt bool true & info [ "shrink" ] ~docv:"BOOL"
           ~doc:"Delta-debug failing scenarios to minimal reproducers.")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Replay saved failing scenarios ($(b,*.scn)) first, and save \
                 new failures (original, shrunk, and an OCaml reproducer) \
                 here.")
  in
  let mutate_arg =
    Arg.(value & flag & info [ "mutate-lgc" ]
           ~doc:"Self-check: enable the over-collecting mutation in every \
                 collector; exit 0 iff the campaign catches it.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE"
           ~doc:"Replay one saved scenario file instead of fuzzing; exit 0 \
                 iff it passes the oracles.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress per-run output.")
  in
  let fuzz_shards_arg =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"K"
             ~doc:"Run simulated-mode donor simulations on $(docv) engine \
                   domains. Scenarios and verdicts are identical for every \
                   value; > 1 smoke-tests the parallel engine under the \
                   oracles.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const do_fuzz $ seed_arg $ runs_arg $ max_procs_arg $ shrink_arg
      $ corpus_arg $ mutate_arg $ replay_arg $ quiet_arg $ fuzz_shards_arg)

(* --- cluster-run / node --------------------------------------------------- *)

let nemesis_conv =
  let parse s =
    match Rdt_transport.Nemesis.of_string s with
    | Ok cfg -> Ok cfg
    | Error e -> Error (`Msg e)
  in
  Arg.conv
    ( parse,
      fun ppf cfg ->
        Format.pp_print_string ppf (Rdt_transport.Nemesis.to_string cfg) )

let nemesis_arg =
  Arg.(value & opt (some nemesis_conv) None
       & info [ "nemesis" ] ~docv:"SPEC"
           ~doc:"Fault-injection schedule (the $(b,nms1 ...) form written \
                 by live-fuzz, or $(b,nms1 seed=0x2a part=-) style by \
                 hand): every endpoint drops, delays, duplicates and \
                 corrupts frames deterministically from the spec.")

let do_cluster_run scenario_file root backend seed timeout nemesis keep quiet =
  let log = if quiet then fun _ -> () else print_endline in
  match Rdt_verify.Scenario.load scenario_file with
  | Error e ->
    Printf.eprintf "cannot load %s: %s\n" scenario_file e;
    exit 1
  | Ok sc ->
    let root, temp_root =
      match root with
      | Some r -> (r, false)
      | None ->
        ( Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "rdtgc-cluster-%d" (Unix.getpid ())),
          true )
    in
    Format.printf "%a@." Rdt_verify.Scenario.pp sc;
    log (Printf.sprintf "cluster root: %s" root);
    let result =
      match backend with
      | `Sim ->
        Rdt_live.Sim_cluster.run ~scenario:sc ~root ~seed ?nemesis ~log ()
      | `Fork ->
        Rdt_live.Cluster.run ~scenario:sc ~root
          ~backend:Rdt_live.Cluster.Fork ~timeout ?nemesis ~log ()
      | `Exec ->
        Rdt_live.Cluster.run ~scenario:sc ~root
          ~backend:(Rdt_live.Cluster.Exec Sys.executable_name)
          ~timeout ?nemesis ~log ()
    in
    let cleanup ok =
      if temp_root && ok && not keep then Rdt_verify.Harness.rm_rf root
      else Printf.printf "stores and logs kept under %s\n" root
    in
    (match result with
    | Error msg ->
      Printf.eprintf "cluster run failed: %s\n" msg;
      cleanup false;
      exit 1
    | Ok record ->
      log "cluster run complete; replaying against the simulator";
      let check = Rdt_live.Checker.check ~record ~root () in
      (match check.Rdt_live.Checker.violations with
      | [] ->
        print_endline "ok: live run matches the simulator replay";
        cleanup true
      | vs ->
        List.iter
          (fun v -> Format.printf "%a@." Rdt_verify.Oracles.pp_violation v)
          vs;
        cleanup false;
        exit 1))

let cluster_run_cmd =
  let doc =
    "Run a scenario file against a live local cluster — one OS process per \
     scenario pid on loopback TCP, each with its own durable store — then \
     replay it through the simulator and hold the live run against the \
     oracles: per-op protocol state, transcript, recovery reports, and \
     recovered store contents (black-box differential checking).  Crash \
     ops SIGKILL the victim process and respawn it from its store."
  in
  let scenario_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO"
           ~doc:"Scenario file ($(b,.scn), the fuzzer's corpus format).")
  in
  let root_arg =
    Arg.(value & opt (some string) None & info [ "root" ] ~docv:"DIR"
           ~doc:"Cluster root: per-node stores and logs live in \
                 $(docv)/p<pid> (wiped first). Default: a fresh directory \
                 under the system temp dir, removed when the run passes.")
  in
  let backend_arg =
    Arg.(value & opt (enum [ ("exec", `Exec); ("fork", `Fork); ("sim", `Sim) ])
           `Exec
         & info [ "backend" ] ~docv:"BACKEND"
             ~doc:"$(b,exec) spawns this executable per node (default); \
                   $(b,fork) forks instead; $(b,sim) drives the same node \
                   logic deterministically inside the simulator.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Simulator seed (only the $(b,sim) backend uses it).")
  in
  let timeout_arg =
    Arg.(value & opt float 60.0 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-response coordinator timeout.")
  in
  let keep_arg =
    Arg.(value & flag & info [ "keep" ]
           ~doc:"Keep the cluster root even when the run passes.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress per-op output.")
  in
  Cmd.v (Cmd.info "cluster-run" ~doc)
    Term.(
      const do_cluster_run $ scenario_arg $ root_arg $ backend_arg $ seed_arg
      $ timeout_arg $ nemesis_arg $ keep_arg $ quiet_arg)

let do_node me dir coord_port nemesis =
  Rdt_live.Cluster.node_main ~me ~dir ~coord_port ?nemesis ()

let node_cmd =
  let doc =
    "Run one cluster node process (spawned by $(b,cluster-run); not \
     intended for direct use)."
  in
  let me_arg =
    Arg.(required & opt (some int) None & info [ "me" ] ~docv:"PID" ~doc:"Node id.")
  in
  let dir_arg =
    Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
           ~doc:"Node directory (durable store under $(docv)/store).")
  in
  let coord_port_arg =
    Arg.(required & opt (some int) None & info [ "coord-port" ] ~docv:"PORT"
           ~doc:"Coordinator's loopback TCP port.")
  in
  Cmd.v (Cmd.info "node" ~doc)
    Term.(const do_node $ me_arg $ dir_arg $ coord_port_arg $ nemesis_arg)

(* --- live-fuzz ------------------------------------------------------------ *)

let do_live_fuzz seed runs max_procs backend root corpus shrink mutate timeout
    quiet =
  let log = if quiet then fun _ -> () else print_endline in
  let backend =
    match backend with
    | `Sim -> Rdt_live.Live_fuzz.Sim
    | `Fork -> Rdt_live.Live_fuzz.Live Rdt_live.Cluster.Fork
    | `Exec ->
      Rdt_live.Live_fuzz.Live (Rdt_live.Cluster.Exec Sys.executable_name)
  in
  let root, temp_root =
    match root with
    | Some r -> (r, false)
    | None ->
      ( Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "rdtgc-live-fuzz-%d" (Unix.getpid ())),
        true )
  in
  let report =
    Rdt_live.Live_fuzz.campaign ~backend ~shrink ?corpus ~log ~timeout
      ~mutate_deliver:mutate ~seed ~runs ~max_procs ~root ()
  in
  let ok = Rdt_live.Live_fuzz.passed report in
  if temp_root && (ok || mutate) then Rdt_verify.Harness.rm_rf root
  else log (Printf.sprintf "campaign scratch kept under %s" root);
  if mutate then begin
    (* self-check: the deliberately duplicated delivery must be caught *)
    if ok then begin
      print_endline
        "self-check FAILED: duplicated delivery escaped every oracle";
      exit 1
    end
    else print_endline "self-check ok: duplicated delivery caught"
  end
  else if not ok then exit 1

let live_fuzz_cmd =
  let doc =
    "Jepsen-style fuzzing of the live runtime: generate random scenarios \
     and random nemesis fault schedules from a seed, run them against a \
     whole cluster (deterministic simulator backend or real TCP processes \
     on loopback), and hold every run against the black-box checker \
     oracles.  Failures are delta-debugged and saved as \
     scenario + nemesis seed pairs, so any failure replays from its seed."
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Root seed; every run derives a sub-seed from it that \
                 regenerates both the scenario and the fault schedule.")
  in
  let runs_arg =
    Arg.(value & opt int 50 & info [ "runs" ] ~docv:"N"
           ~doc:"Number of generated runs.")
  in
  let max_procs_arg =
    Arg.(value & opt int 4 & info [ "max-procs" ] ~docv:"N"
           ~doc:"Upper bound on the process count of generated scenarios.")
  in
  let backend_arg =
    Arg.(value & opt (enum [ ("sim", `Sim); ("exec", `Exec); ("fork", `Fork) ])
           `Sim
         & info [ "backend" ] ~docv:"BACKEND"
             ~doc:"$(b,sim) runs clusters in-process on the deterministic \
                   simulator (default); $(b,exec) spawns this executable \
                   per node over TCP; $(b,fork) forks instead.")
  in
  let root_arg =
    Arg.(value & opt (some string) None & info [ "root" ] ~docv:"DIR"
           ~doc:"Campaign scratch directory (wiped). Default: a fresh \
                 directory under the system temp dir, removed when the \
                 campaign passes.")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Replay committed $(b,*.scn) scenarios first (each under \
                 its sibling $(b,.nms) schedule), and save new failures \
                 (scenario, nemesis spec, shrunk scenario) here.")
  in
  let shrink_arg =
    Arg.(value & opt bool true & info [ "shrink" ] ~docv:"BOOL"
           ~doc:"Delta-debug failing scenarios to minimal reproducers \
                 (on the simulator arm whenever it reproduces the \
                 failure).")
  in
  let mutate_arg =
    Arg.(value & flag & info [ "mutate-deliver" ]
           ~doc:"Self-check: every node delivers each message twice; exit \
                 0 iff the campaign catches it.")
  in
  let timeout_arg =
    Arg.(value & opt float 30.0 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-response coordinator timeout of live-backend runs.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress per-run output.")
  in
  Cmd.v (Cmd.info "live-fuzz" ~doc)
    Term.(
      const do_live_fuzz $ seed_arg $ runs_arg $ max_procs_arg $ backend_arg
      $ root_arg $ corpus_arg $ shrink_arg $ mutate_arg $ timeout_arg
      $ quiet_arg)

(* --- lint ---------------------------------------------------------------- *)

let do_lint root dirs baseline json update_baseline output only =
  let baseline_file =
    match baseline with
    | Some f -> Some f
    | None ->
      (* pick up the committed baseline when run from a checkout *)
      let cand = Filename.concat root "lint_baseline.txt" in
      if Sys.file_exists cand then Some cand else None
  in
  (match only with
  | Some prefix
    when not
           (List.exists
              (String.starts_with ~prefix)
              Rdt_lint.Rules.ids) ->
    prerr_endline
      (Printf.sprintf
         "lint: --only %s matches no known rule or family; known rules:" prefix);
    List.iter prerr_endline Rdt_lint.Rules.ids;
    exit 2
  | Some _ | None -> ());
  let opts =
    {
      Rdt_lint.Lint.root;
      dirs = (match dirs with [] -> [ "lib" ] | ds -> ds);
      baseline_file;
      json;
      update_baseline;
      output;
      only;
    }
  in
  exit (Rdt_lint.Lint.run opts)

let lint_cmd =
  let doc =
    "Project-invariant static analysis over the typed AST (.cmt files): \
     determinism (no wall clocks, self-seeded RNGs, stray Domain.spawn or \
     hash-order iteration), zero-allocation hot paths \
     ($(b,[@@@lint.zero_alloc_hot])), unsafe-op hygiene \
     ($(b,[@@lint.bounds_checked]) + file allowlist) and polymorphic \
     compare at non-scalar types, and shard-ownership / data-race \
     discipline for the domain-parallel engine ($(b,mt/*): mutable state \
     escaping into a domain-crossing scope, two scopes writing one \
     global, non-atomic cross-scope reads, un-striped shared-array \
     writes).  Suppress per site with $(b,[@lint.allow \"rule-id\" \
     \"justification\"]) or, for the mt family, $(b,[@lint.single_writer \
     \"why\"]).  Use $(b,--only mt/) to run one family.  Exit 1 iff there \
     are findings not covered by the baseline."
  in
  let root_arg =
    Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR"
           ~doc:"Project root; .cmt files are searched under \
                 $(docv)/_build/default, or $(docv) itself when already \
                 inside a build tree.")
  in
  let dir_arg =
    Arg.(value & opt_all string [] & info [ "dir" ] ~docv:"DIR"
           ~doc:"Directory (relative to the build root) to scan; repeatable. \
                 Default: lib.")
  in
  let baseline_arg =
    Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE"
           ~doc:"Baseline file of known-finding fingerprints (default: \
                 ROOT/lint_baseline.txt when present).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON report.")
  in
  let update_arg =
    Arg.(value & flag & info [ "update-baseline" ]
           ~doc:"Rewrite the baseline file with the current findings.")
  in
  let output_arg =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
           ~doc:"Also write the report to $(docv) (e.g. a CI artifact).")
  in
  let only_arg =
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"PREFIX"
           ~doc:"Report only rules whose id starts with $(docv): a family \
                 (e.g. $(b,mt/), $(b,det/)) or one full rule id.  The \
                 baseline view is filtered the same way; \
                 $(b,--update-baseline) still writes the full scan.")
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const do_lint $ root_arg $ dir_arg $ baseline_arg $ json_arg
      $ update_arg $ output_arg $ only_arg)

let () =
  let doc =
    "RDT-LGC: optimal asynchronous garbage collection for RDT checkpointing \
     protocols (Schmidt, Garcia, Pedone & Buzato, ICDCS 2005)"
  in
  let info = Cmd.info "rdtgc" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            analyze_cmd;
            inspect_cmd;
            sweep_cmd;
            store_stats_cmd;
            figure4_cmd;
            protocols_cmd;
            fuzz_cmd;
            live_fuzz_cmd;
            cluster_run_cmd;
            node_cmd;
            lint_cmd;
          ]))
